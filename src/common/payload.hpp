// Reference-counted immutable byte buffers for the message hot path.
//
// A put disseminated to a slice fans out through relays, the event queue and
// the store; copying the value bytes at every step costs O(fanout * hops)
// allocations per logical operation. `Payload` makes those steps share one
// immutable buffer: producers encode once (the Writer builds directly into
// the refcounted buffer), and every Message / queued event / stored object
// afterwards is a (buffer, offset, length) view. Decoders slice sub-views
// out of an incoming frame without copying, so bytes travel
// client -> wire -> store touching the allocator exactly once.
//
// The refcount is intrusive and atomic: a sharded server splits one decoded
// envelope into per-shard sub-views that cross thread boundaries through the
// runtime mailbox, so views of the same buffer are released concurrently.
// Relaxed increments and an acquire-release decrement keep the cost to one
// uncontended RMW per copy — still far cheaper than a shared_ptr control
// block (second allocation per message, and the count lives in the same
// cache line as the data header).
//
// Immutability is the contract that makes sharing safe: nothing may mutate a
// buffer once it is wrapped in a Payload. The accessors only hand out const
// views.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <new>
#include <utility>

#include "common/ensure.hpp"
#include "common/types.hpp"

namespace dataflasks {

class Writer;

/// Non-owning view over contiguous bytes (a minimal std::span<const u8>).
/// Converts implicitly from `Bytes` and from `Payload`, so codec functions
/// taking ByteView accept both without copying.
struct ByteView {
  const std::uint8_t* ptr = nullptr;
  std::size_t len = 0;

  constexpr ByteView() = default;
  constexpr ByteView(const std::uint8_t* p, std::size_t n) : ptr(p), len(n) {}
  ByteView(const Bytes& b) : ptr(b.data()), len(b.size()) {}

  [[nodiscard]] constexpr const std::uint8_t* data() const { return ptr; }
  [[nodiscard]] constexpr std::size_t size() const { return len; }
  [[nodiscard]] constexpr bool empty() const { return len == 0; }
  constexpr const std::uint8_t& operator[](std::size_t i) const {
    return ptr[i];
  }
  [[nodiscard]] constexpr const std::uint8_t* begin() const { return ptr; }
  [[nodiscard]] constexpr const std::uint8_t* end() const { return ptr + len; }
};

/// Running totals of payload buffer materializations. This is the counting
/// allocator the perf tests assert on: one logical message encoded and
/// fanned out to k peers must report exactly one buffer, not k.
struct PayloadAllocStats {
  std::uint64_t buffers = 0;  ///< fresh backing buffers created
  std::uint64_t bytes = 0;    ///< sum of their sizes
};

namespace detail {
/// Process-wide materialization totals, updated relaxed (shards allocate
/// concurrently; only the perf tests read them, single-threaded).
struct PayloadAllocCounters {
  std::atomic<std::uint64_t> buffers{0};
  std::atomic<std::uint64_t> bytes{0};
};
}  // namespace detail

class Payload {
 public:
  Payload() = default;

  /// Copies a byte buffer into a fresh shared buffer; the single counted
  /// allocation per logical message. Implicit so `Bytes`-producing call
  /// sites (values, tests) stay valid. Hot-path encoders avoid even this
  /// one copy by building in place via Writer::take_payload().
  Payload(const Bytes& bytes) : Payload(ByteView(bytes)) {}
  explicit Payload(ByteView view) {
    if (view.empty()) return;
    buf_ = allocate(view.size());
    std::memcpy(buf_->data(), view.data(), view.size());
    len_ = static_cast<std::uint32_t>(view.size());
  }

  /// Copies a view into a fresh buffer (for callers without an owner).
  [[nodiscard]] static Payload copy_of(ByteView v) { return Payload(v); }

  Payload(const Payload& other) noexcept
      : off_(other.off_), len_(other.len_), buf_(other.buf_) {
    if (buf_ != nullptr) buf_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  Payload(Payload&& other) noexcept
      : off_(other.off_), len_(other.len_), buf_(other.buf_) {
    other.buf_ = nullptr;
    other.off_ = other.len_ = 0;
  }
  Payload& operator=(const Payload& other) noexcept {
    Payload copy(other);
    swap(copy);
    return *this;
  }
  Payload& operator=(Payload&& other) noexcept {
    swap(other);
    return *this;
  }
  ~Payload() { release(); }

  void swap(Payload& other) noexcept {
    std::swap(buf_, other.buf_);
    std::swap(off_, other.off_);
    std::swap(len_, other.len_);
  }

  [[nodiscard]] const std::uint8_t* data() const {
    return buf_ != nullptr ? buf_->data() + off_ : nullptr;
  }
  [[nodiscard]] std::size_t size() const { return len_; }
  [[nodiscard]] bool empty() const { return len_ == 0; }
  const std::uint8_t& operator[](std::size_t i) const { return data()[i]; }
  [[nodiscard]] const std::uint8_t& front() const { return data()[0]; }
  [[nodiscard]] const std::uint8_t* begin() const { return data(); }
  [[nodiscard]] const std::uint8_t* end() const { return data() + len_; }

  [[nodiscard]] ByteView view() const { return ByteView(data(), len_); }
  operator ByteView() const { return view(); }

  /// A view of [offset, offset + length) sharing this payload's buffer.
  [[nodiscard]] Payload subview(std::size_t offset, std::size_t length) const {
    ensure(offset + length <= len_, "Payload::subview out of bounds");
    if (length == 0) return Payload();
    Payload out;
    out.buf_ = buf_;
    out.buf_->refs.fetch_add(1, std::memory_order_relaxed);
    out.off_ = off_ + static_cast<std::uint32_t>(offset);
    out.len_ = static_cast<std::uint32_t>(length);
    return out;
  }

  /// Copies the viewed bytes out (interop with mutable-buffer code).
  [[nodiscard]] Bytes to_bytes() const { return Bytes(begin(), end()); }

  /// True when both payloads view the same backing buffer (aliasing tests).
  [[nodiscard]] bool shares_buffer_with(const Payload& other) const {
    return buf_ != nullptr && buf_ == other.buf_;
  }
  /// View origin within the shared buffer and current reference count;
  /// exposed for zero-copy plumbing and tests.
  [[nodiscard]] std::size_t offset() const { return off_; }
  [[nodiscard]] long use_count() const {
    return buf_ != nullptr
               ? static_cast<long>(buf_->refs.load(std::memory_order_relaxed))
               : 0;
  }

  /// Deep content comparison (views over different buffers holding the same
  /// bytes compare equal).
  friend bool operator==(const Payload& a, const Payload& b) {
    return a.view_equals(b.view());
  }
  friend bool operator==(const Payload& a, const Bytes& b) {
    return a.view_equals(ByteView(b));
  }

  [[nodiscard]] static PayloadAllocStats alloc_stats() {
    return PayloadAllocStats{
        stats_.buffers.load(std::memory_order_relaxed),
        stats_.bytes.load(std::memory_order_relaxed)};
  }
  static void reset_alloc_stats() {
    stats_.buffers.store(0, std::memory_order_relaxed);
    stats_.bytes.store(0, std::memory_order_relaxed);
  }

 private:
  friend class Writer;  // builds buffers in place, then wraps them

  /// Intrusive control header; the data bytes follow it in one allocation.
  struct Ctrl {
    std::atomic<std::uint32_t> refs{1};
    std::uint32_t capacity = 0;  ///< data bytes allocated after the header

    [[nodiscard]] std::uint8_t* data() {
      return reinterpret_cast<std::uint8_t*>(this + 1);
    }
    [[nodiscard]] const std::uint8_t* data() const {
      return reinterpret_cast<const std::uint8_t*>(this + 1);
    }
  };

  [[nodiscard]] static Ctrl* allocate(std::size_t n) {
    auto* ctrl = ::new (::operator new(sizeof(Ctrl) + n)) Ctrl;
    ctrl->capacity = static_cast<std::uint32_t>(n);
    stats_.buffers.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes.fetch_add(n, std::memory_order_relaxed);
    return ctrl;
  }
  static void deallocate(Ctrl* ctrl) {
    ctrl->~Ctrl();
    ::operator delete(ctrl);
  }

  /// Adopts an already-filled buffer (Writer hand-off; refcount stays 1).
  Payload(Ctrl* ctrl, std::uint32_t length) : len_(length), buf_(ctrl) {}

  void release() {
    // Release ordering publishes this view's reads; the final decrement
    // acquires so the deallocating thread sees every other view's effects.
    if (buf_ != nullptr &&
        buf_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      deallocate(buf_);
    }
    buf_ = nullptr;
  }

  [[nodiscard]] bool view_equals(ByteView other) const {
    if (len_ != other.size()) return false;
    return len_ == 0 || std::equal(begin(), end(), other.begin());
  }

  inline static detail::PayloadAllocCounters stats_{};

  std::uint32_t off_ = 0;
  std::uint32_t len_ = 0;
  Ctrl* buf_ = nullptr;
};

}  // namespace dataflasks
