#include "common/rng.hpp"

#include <cmath>

namespace dataflasks {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  ensure(bound > 0, "Rng::next_below(0)");
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  ensure(lo < hi, "Rng::next_in: empty range");
  return lo + static_cast<std::int64_t>(
                  next_below(static_cast<std::uint64_t>(hi - lo)));
}

double Rng::next_double() {
  // 53 high bits into the double mantissa.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_exponential(double mean) {
  ensure(mean > 0.0, "Rng::next_exponential: non-positive mean");
  double u = next_double();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::fork(std::uint64_t salt) {
  // Derive the child seed from our own stream plus the salt; advancing our
  // state keeps successive unsalted forks distinct as well.
  return Rng(next_u64() ^ (salt * 0x9e3779b97f4a7c15ULL));
}

}  // namespace dataflasks
