#include "common/hash.hpp"

#include "common/ensure.hpp"

namespace dataflasks {

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t stable_key_hash(std::string_view key) {
  std::uint64_t x = fnv1a64(key);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

std::uint32_t hash_to_bucket(std::uint64_t hash, std::uint32_t buckets) {
  ensure(buckets > 0, "hash_to_bucket: zero buckets");
  return static_cast<std::uint32_t>(
      (static_cast<__uint128_t>(hash) * buckets) >> 64);
}

namespace {

struct Crc32Table {
  std::uint32_t entries[256];

  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (0xedb88320U ^ (c >> 1)) : (c >> 1);
      }
      entries[i] = c;
    }
  }
};

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  static const Crc32Table table;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xffffffffU;
  for (std::size_t i = 0; i < size; ++i) {
    c = table.entries[(c ^ p[i]) & 0xffU] ^ (c >> 8);
  }
  return c ^ 0xffffffffU;
}

}  // namespace dataflasks
