// Invariant checking helpers. Protocol code uses ensure() for conditions
// that indicate a programming error (never for remote-input validation,
// which returns Result instead).
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace dataflasks {

class InvariantViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Throws InvariantViolation when `condition` is false. Kept enabled in all
/// build types: simulation determinism makes violations reproducible, so the
/// cost of checking is worth the debuggability.
///
/// Takes `const char*` so the passing (hot) path is a branch and nothing
/// else. The previous `const std::string&` signature materialized a heap
/// string per call for any message beyond the SSO limit — ensure() guards
/// the RNG, the event queue and the transport, and those throwaway strings
/// were ~80% of all allocations in large simulation runs.
[[noreturn]] inline void ensure_failed(const char* what,
                                       std::source_location loc) {
  throw InvariantViolation(std::string(loc.file_name()) + ":" +
                           std::to_string(loc.line()) + ": " + what);
}

inline void ensure(bool condition, const char* what,
                   std::source_location loc = std::source_location::current()) {
  if (condition) [[likely]] {
    return;
  }
  ensure_failed(what, loc);
}

/// Overload for call sites that build dynamic messages; the string is still
/// constructed eagerly there, so keep such messages off hot paths.
inline void ensure(bool condition, const std::string& what,
                   std::source_location loc = std::source_location::current()) {
  if (condition) [[likely]] {
    return;
  }
  ensure_failed(what.c_str(), loc);
}

}  // namespace dataflasks
