// Invariant checking helpers. Protocol code uses ensure() for conditions
// that indicate a programming error (never for remote-input validation,
// which returns Result instead).
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace dataflasks {

class InvariantViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Throws InvariantViolation when `condition` is false. Kept enabled in all
/// build types: simulation determinism makes violations reproducible, so the
/// cost of checking is worth the debuggability.
inline void ensure(bool condition, const std::string& what,
                   std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw InvariantViolation(std::string(loc.file_name()) + ":" +
                             std::to_string(loc.line()) + ": " + what);
  }
}

}  // namespace dataflasks
