// Process-wide observability metrics (ROADMAP "production load harness +
// observability"): lock-free counters and gauges plus log-linear latency
// histograms with cheap p50/p99/p999 extraction, grouped into a registry
// that renders the Prometheus text exposition format.
//
// This layer is deliberately separate from common/metrics.hpp: that registry
// is per-node and single-threaded (the simulator's event counters), while
// this one is shared across threads — the server's runtime loop writes it
// while a scrape renders it, and the load generator's worker threads each
// fill histograms that are merged bucket-wise after join. Hot-path writes
// are a single relaxed atomic add; locking exists only at registration and
// render time.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/metrics.hpp"

namespace dataflasks::obs {

/// Monotonic counter. set() exists for mirroring an external monotonic
/// source (e.g. the transport's datagram totals) into the exposition.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depths, view sizes).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-linear histogram for microsecond latencies (any non-negative u64
/// works). Values below 2^kSubBits land in exact unit-wide buckets; above
/// that, each power-of-two range is split into 2^kSubBits sub-buckets, so a
/// reported quantile overestimates the true value by at most one part in
/// 2^kSubBits (~3.1%) — the HdrHistogram trade, at a fixed 1920 buckets
/// covering the full u64 range with no allocation after construction.
///
/// record() is a relaxed atomic increment; quantile()/count()/mean() read
/// concurrently and are approximate while writers race (each bucket is
/// internally consistent, cross-bucket totals may be mid-update — fine for
/// monitoring, and exact once writers quiesce, which is when the load
/// generator reads them).
class LatencyHistogram {
 public:
  static constexpr unsigned kSubBits = 5;
  static constexpr std::size_t kSubCount = std::size_t{1} << kSubBits;
  /// Majors: values >= kSubCount occupy bit-widths kSubBits+1 .. 64.
  static constexpr std::size_t kBucketCount = (64 - kSubBits + 1) * kSubCount;

  void record(std::uint64_t value) {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

  /// Upper bound of the bucket holding the q-quantile (0 < q <= 1): the
  /// smallest recorded-value ceiling such that at least ceil(q * count)
  /// recorded values are <= it. Returns 0 on an empty histogram.
  [[nodiscard]] std::uint64_t quantile(double q) const;

  /// Bucket-wise accumulation: how the load generator folds per-worker
  /// histograms into one report after the worker threads join.
  void merge_from(const LatencyHistogram& other);

  /// Index of the bucket covering `value` (exposed for the percentile-math
  /// tests).
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value) {
    if (value < kSubCount) return static_cast<std::size_t>(value);
    const unsigned width = static_cast<unsigned>(std::bit_width(value));
    const unsigned shift = width - 1 - kSubBits;
    const std::size_t major = width - kSubBits;
    const std::size_t sub = (value >> shift) & (kSubCount - 1);
    return major * kSubCount + sub;
  }

  /// Largest value mapping to bucket `index` (what quantile() reports).
  [[nodiscard]] static std::uint64_t bucket_upper_bound(std::size_t index) {
    if (index < kSubCount) return index;
    const std::size_t major = index / kSubCount;
    const std::uint64_t sub = index % kSubCount;
    const unsigned shift = static_cast<unsigned>(major - 1);
    const std::uint64_t low = (kSubCount + sub) << shift;
    return low + ((std::uint64_t{1} << shift) - 1);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Process-wide registry: metric families keyed by Prometheus metric name,
/// instances within a family keyed by their label string (e.g. `op="put"`).
/// Registration returns a stable reference the hot path holds on to —
/// lookups and the registry mutex are paid once, at wiring time. Rendering
/// walks everything under the same mutex (registration is rare; scrapes
/// tolerate the pause).
class MetricsRegistry {
 public:
  /// `labels` is the inner label list without braces ("" for none), e.g.
  /// `op="put"`. Label values must be pre-escaped by the caller only if
  /// they contain '"', '\' or newlines — plain identifiers need nothing.
  Counter& counter(const std::string& name, const std::string& labels = "",
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& labels = "",
               const std::string& help = "");
  /// Rendered as a Prometheus summary with quantile labels 0.5 / 0.99 /
  /// 0.999 plus _sum and _count, values in the unit recorded (we record
  /// microseconds and suffix names _us).
  LatencyHistogram& histogram(const std::string& name,
                              const std::string& labels = "",
                              const std::string& help = "");

  /// Full Prometheus text exposition (HELP/TYPE lines + one sample line per
  /// instance), families in name order.
  [[nodiscard]] std::string render() const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Instance {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };
  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    std::map<std::string, Instance> instances;  ///< keyed by label string
  };

  Family& family(const std::string& name, Kind kind, const std::string& help);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

/// Prometheus metric-name validity: [a-zA-Z_:][a-zA-Z0-9_:]*. Registration
/// enforces this; the format tests reuse it.
[[nodiscard]] bool is_valid_metric_name(const std::string& name);

/// Escapes a label value for the exposition format (backslash, quote,
/// newline).
[[nodiscard]] std::string escape_label_value(const std::string& value);

/// Renders a per-node (common/metrics.hpp) registry's counters as one
/// Prometheus counter family, each counter as a label:
///   name{counter="rh.puts_stored"} 17
/// This is how the node's existing event counters join the exposition
/// without re-instrumenting every subsystem.
[[nodiscard]] std::string render_node_counters(
    const dataflasks::MetricsRegistry& node, const std::string& name);

}  // namespace dataflasks::obs
