#include "obs/metrics.hpp"

#include <cinttypes>
#include <cstdio>

#include "common/ensure.hpp"

namespace dataflasks::obs {

namespace {

const char* kind_name(std::uint8_t kind) {
  switch (kind) {
    case 0: return "counter";
    case 1: return "gauge";
    default: return "summary";
  }
}

void append_sample_name(std::string& out, const std::string& name,
                        const std::string& labels,
                        const std::string& extra_label = {}) {
  out += name;
  if (!labels.empty() || !extra_label.empty()) {
    out += '{';
    out += labels;
    if (!labels.empty() && !extra_label.empty()) out += ',';
    out += extra_label;
    out += '}';
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_f64(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%g", v);
  out += buf;
}

}  // namespace

std::uint64_t LatencyHistogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample, 1-based: ceil(q * total), at least 1.
  std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(total) + 0.9999999);
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) return bucket_upper_bound(i);
  }
  // Writers raced count() past the bucket walk: fall back to the max seen.
  return max();
}

void LatencyHistogram::merge_from(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  std::uint64_t theirs = other.max();
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (theirs > seen &&
         !max_.compare_exchange_weak(seen, theirs,
                                     std::memory_order_relaxed)) {
  }
}

bool is_valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name.front())) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

MetricsRegistry::Family& MetricsRegistry::family(const std::string& name,
                                                Kind kind,
                                                const std::string& help) {
  ensure(is_valid_metric_name(name), "obs: invalid metric name");
  auto [it, inserted] = families_.try_emplace(name);
  Family& family = it->second;
  if (inserted) {
    family.kind = kind;
    family.help = help;
  } else {
    ensure(family.kind == kind, "obs: metric re-registered as another kind");
    if (family.help.empty()) family.help = help;
  }
  return family;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& labels,
                                  const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Instance& inst =
      family(name, Kind::kCounter, help).instances[labels];
  if (!inst.counter) inst.counter = std::make_unique<Counter>();
  return *inst.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& labels,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Instance& inst = family(name, Kind::kGauge, help).instances[labels];
  if (!inst.gauge) inst.gauge = std::make_unique<Gauge>();
  return *inst.gauge;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name,
                                             const std::string& labels,
                                             const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Instance& inst = family(name, Kind::kHistogram, help).instances[labels];
  if (!inst.histogram) inst.histogram = std::make_unique<LatencyHistogram>();
  return *inst.histogram;
}

std::string MetricsRegistry::render() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(4096);
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      out += "# HELP ";
      out += name;
      out += ' ';
      out += family.help;
      out += '\n';
    }
    out += "# TYPE ";
    out += name;
    out += ' ';
    out += kind_name(static_cast<std::uint8_t>(family.kind));
    out += '\n';
    for (const auto& [labels, inst] : family.instances) {
      switch (family.kind) {
        case Kind::kCounter: {
          append_sample_name(out, name, labels);
          out += ' ';
          append_u64(out, inst.counter->value());
          out += '\n';
          break;
        }
        case Kind::kGauge: {
          append_sample_name(out, name, labels);
          out += ' ';
          append_f64(out, inst.gauge->value());
          out += '\n';
          break;
        }
        case Kind::kHistogram: {
          static constexpr struct {
            const char* label;
            double q;
          } kQuantiles[] = {{"quantile=\"0.5\"", 0.5},
                            {"quantile=\"0.99\"", 0.99},
                            {"quantile=\"0.999\"", 0.999}};
          for (const auto& [label, q] : kQuantiles) {
            append_sample_name(out, name, labels, label);
            out += ' ';
            append_u64(out, inst.histogram->quantile(q));
            out += '\n';
          }
          append_sample_name(out, name + "_sum", labels);
          out += ' ';
          append_u64(out, inst.histogram->sum());
          out += '\n';
          append_sample_name(out, name + "_count", labels);
          out += ' ';
          append_u64(out, inst.histogram->count());
          out += '\n';
          break;
        }
      }
    }
  }
  return out;
}

std::string render_node_counters(const dataflasks::MetricsRegistry& node,
                                 const std::string& name) {
  ensure(is_valid_metric_name(name), "obs: invalid metric name");
  std::string out;
  out += "# TYPE " + name + " counter\n";
  for (const auto& [counter, value] : node.all_counters()) {
    out += name;
    out += "{counter=\"";
    out += escape_label_value(counter);
    out += "\"} ";
    append_u64(out, value);
    out += '\n';
  }
  return out;
}

}  // namespace dataflasks::obs
