#include "obs/metrics_endpoint.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/ensure.hpp"
#include "net/udp_transport.hpp"  // resolve_ipv4

namespace dataflasks::obs {

MetricsTcpEndpoint::MetricsTcpEndpoint(runtime::RealTimeRuntime& rt,
                                       const std::string& bind_host,
                                       std::uint16_t port, Provider provider)
    : runtime_(rt), provider_(std::move(provider)) {
  ensure(provider_ != nullptr, "MetricsTcpEndpoint: provider required");
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  ensure(listen_fd_ >= 0, "MetricsTcpEndpoint: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const auto resolved = net::resolve_ipv4(bind_host);
  ensure(resolved.has_value(),
         "MetricsTcpEndpoint: cannot resolve bind host");
  ensure(::inet_pton(AF_INET, resolved->c_str(), &addr.sin_addr) == 1,
         "MetricsTcpEndpoint: bad bind address");
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ensure(false, "MetricsTcpEndpoint: bind/listen failed (port in use?)");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ensure(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                       &bound_len) == 0,
         "MetricsTcpEndpoint: getsockname() failed");
  port_ = ntohs(bound.sin_port);

  runtime_.watch_fd(listen_fd_, [this]() { on_accept(); });
}

MetricsTcpEndpoint::~MetricsTcpEndpoint() {
  if (listen_fd_ >= 0) {
    runtime_.unwatch_fd(listen_fd_);
    ::close(listen_fd_);
  }
}

void MetricsTcpEndpoint::on_accept() {
  // Level-triggered: drain every queued connection.
  for (;;) {
    const int conn = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (conn < 0) return;  // EAGAIN: drained (or transient error; retry later)
    serve(conn);
    ::close(conn);
  }
}

void MetricsTcpEndpoint::serve(int conn_fd) {
  // One synchronous request/response per connection, bounded by a short
  // receive timeout: the request line may not have arrived yet when accept
  // fires, and a scrape is rare enough that stalling the loop up to the
  // timeout for a hung client is an acceptable trade for not growing a
  // connection state machine.
  timeval timeout{};
  timeout.tv_usec = 500 * 1000;
  ::setsockopt(conn_fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  char request[1024];
  (void)::recv(conn_fd, request, sizeof request, 0);  // best effort

  const std::string body = provider_();
  char header[256];
  const int header_len = std::snprintf(
      header, sizeof header,
      "HTTP/1.0 200 OK\r\n"
      "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
      "Content-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      body.size());
  // Blocking sends with the same timeout; a stuck client forfeits its
  // scrape (partial write, connection closed below).
  timeout.tv_usec = 500 * 1000;
  ::setsockopt(conn_fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);
  if (::send(conn_fd, header, static_cast<std::size_t>(header_len),
             MSG_NOSIGNAL) == header_len) {
    std::size_t off = 0;
    while (off < body.size()) {
      const ssize_t n = ::send(conn_fd, body.data() + off, body.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
  }
  ++scrapes_;
}

}  // namespace dataflasks::obs
