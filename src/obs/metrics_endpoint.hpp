// Plain-TCP Prometheus scrape endpoint: a listening socket on the
// RealTimeRuntime's poll loop that answers every connection with one
// HTTP/1.0 response carrying the rendered exposition, then closes. Enough
// HTTP for `curl host:port/metrics` and a Prometheus scraper; deliberately
// not a web server (one socket, no keep-alive, no routing — every path
// returns the metrics page).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "runtime/real_time_runtime.hpp"

namespace dataflasks::obs {

class MetricsTcpEndpoint {
 public:
  /// Called per scrape on the runtime loop thread; returns the full
  /// exposition body.
  using Provider = std::function<std::string()>;

  /// Binds and listens on bind_host:port (port 0 picks an ephemeral port —
  /// read it back with port()). Throws via ensure() on bind failure.
  MetricsTcpEndpoint(runtime::RealTimeRuntime& rt, const std::string& bind_host,
                     std::uint16_t port, Provider provider);
  ~MetricsTcpEndpoint();

  MetricsTcpEndpoint(const MetricsTcpEndpoint&) = delete;
  MetricsTcpEndpoint& operator=(const MetricsTcpEndpoint&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::uint64_t scrapes_served() const { return scrapes_; }

 private:
  void on_accept();
  void serve(int conn_fd);

  runtime::RealTimeRuntime& runtime_;
  Provider provider_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint64_t scrapes_ = 0;
};

}  // namespace dataflasks::obs
