// Peer Sampling Service interface (paper §II). Implementations (Cyclon,
// Newscast) provide each node with a continuously refreshed partial view
// approximating a uniform random sample of the whole system.
//
// Driving model: the owner (core::Node or a test harness) calls tick() on
// the gossip period and routes incoming messages to handle(). Protocols
// never touch the simulator directly, only the Transport.
#pragma once

#include <functional>
#include <vector>

#include "net/message.hpp"
#include "pss/view.hpp"

namespace dataflasks::pss {

class PeerSampling {
 public:
  /// Invoked with every batch of descriptors freshly learned from a gossip
  /// exchange. DataFlasks builds its slice-local views by filtering this
  /// stream (paper §IV-B "we consider a Peer Sampling Service intra-slice").
  using SampleListener =
      std::function<void(const std::vector<NodeDescriptor>&)>;

  virtual ~PeerSampling() = default;

  /// Installs initial contacts (e.g. from a bootstrap service).
  virtual void bootstrap(const std::vector<NodeId>& seeds) = 0;

  /// One gossip cycle.
  virtual void tick() = 0;

  /// Consumes a message if its type belongs to this protocol.
  /// Returns false (without side effects) otherwise.
  virtual bool handle(const net::Message& msg) = 0;

  /// Current partial view.
  [[nodiscard]] virtual const View& view() const = 0;

  /// Up to `count` distinct peer ids sampled from the current view.
  virtual std::vector<NodeId> sample_peers(std::size_t count) = 0;

  void set_sample_listener(SampleListener listener) {
    listener_ = std::move(listener);
  }

 protected:
  void notify_samples(const std::vector<NodeDescriptor>& batch) const {
    if (listener_ && !batch.empty()) listener_(batch);
  }

 private:
  SampleListener listener_;
};

}  // namespace dataflasks::pss
