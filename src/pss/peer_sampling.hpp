// Peer Sampling Service interface (paper §II). Implementations (Cyclon,
// Newscast) provide each node with a continuously refreshed partial view
// approximating a uniform random sample of the whole system.
//
// Driving model: the owner (core::Node or a test harness) calls tick() on
// the gossip period and routes incoming messages to handle(). Protocols
// never touch the simulator directly, only the Transport.
#pragma once

#include <functional>
#include <vector>

#include "net/message.hpp"
#include "pss/view.hpp"

namespace dataflasks::pss {

class PeerSampling {
 public:
  /// Invoked with every batch of descriptors freshly learned from a gossip
  /// exchange. DataFlasks builds its slice-local views by filtering this
  /// stream (paper §IV-B "we consider a Peer Sampling Service intra-slice").
  using SampleListener =
      std::function<void(const std::vector<NodeDescriptor>&)>;

  /// Invoked with EVERY batch of descriptors received in a gossip exchange,
  /// including ids already in the view. This is the routing-refresh stream:
  /// a node whose id is long known but whose endpoint just changed (restart
  /// on a new port) only surfaces here, never in the fresh-sample stream.
  using DescriptorListener =
      std::function<void(const std::vector<NodeDescriptor>&)>;

  /// Supplies the address to advertise in this node's self-descriptors.
  /// Returns nullopt when there is nothing to gossip (simulated transports).
  using SelfEndpointFn = std::function<std::optional<Endpoint>()>;

  virtual ~PeerSampling() = default;

  /// Installs initial contacts (e.g. from a bootstrap service).
  virtual void bootstrap(const std::vector<NodeId>& seeds) = 0;

  /// One gossip cycle.
  virtual void tick() = 0;

  /// Consumes a message if its type belongs to this protocol.
  /// Returns false (without side effects) otherwise.
  virtual bool handle(const net::Message& msg) = 0;

  /// Current partial view.
  [[nodiscard]] virtual const View& view() const = 0;

  /// Up to `count` distinct peer ids sampled from the current view.
  virtual std::vector<NodeId> sample_peers(std::size_t count) = 0;

  void set_sample_listener(SampleListener listener) {
    listener_ = std::move(listener);
  }

  void set_descriptor_listener(DescriptorListener listener) {
    descriptor_listener_ = std::move(listener);
  }

  void set_self_endpoint_provider(SelfEndpointFn fn) {
    self_endpoint_ = std::move(fn);
  }

 protected:
  void notify_samples(const std::vector<NodeDescriptor>& batch) const {
    if (listener_ && !batch.empty()) listener_(batch);
  }

  void notify_descriptors(const std::vector<NodeDescriptor>& batch) const {
    if (descriptor_listener_ && !batch.empty()) descriptor_listener_(batch);
  }

  /// Endpoint for self-descriptors (nullopt without a provider).
  [[nodiscard]] std::optional<Endpoint> self_endpoint() const {
    return self_endpoint_ ? self_endpoint_() : std::nullopt;
  }

 private:
  SampleListener listener_;
  DescriptorListener descriptor_listener_;
  SelfEndpointFn self_endpoint_;
};

}  // namespace dataflasks::pss
