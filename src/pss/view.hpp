// Partial view: the bounded set of node descriptors a gossip protocol
// maintains. Descriptors carry an age used by Cyclon-style replacement
// policies (old entries are the most likely to be dead).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/types.hpp"

namespace dataflasks::pss {

struct NodeDescriptor {
  NodeId id;
  std::uint32_t age = 0;
  /// The node's gossiped transport address, stamped at its boot. Travels
  /// with the descriptor through every shuffle so the real-cluster address
  /// table heals under churn exactly like the membership does; absent on
  /// simulated nodes (the simulator routes by NodeId alone).
  std::optional<Endpoint> endpoint = std::nullopt;

  friend bool operator==(const NodeDescriptor&, const NodeDescriptor&) =
      default;
};

void encode(Writer& w, const NodeDescriptor& d);
[[nodiscard]] NodeDescriptor decode_descriptor(Reader& r);

/// Keeps the endpoint with the freshest stamp: a restarted node's new
/// address (larger stamp) replaces the stale one no matter which side of a
/// merge it arrives on.
void merge_endpoint(NodeDescriptor& into, const NodeDescriptor& from);

/// Bounded, id-unique collection of descriptors. Not a protocol itself —
/// Cyclon/Newscast implement their merge policies on top of it.
class View {
 public:
  explicit View(std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] bool full() const { return entries_.size() >= capacity_; }

  [[nodiscard]] bool contains(NodeId id) const;

  /// Inserts or refreshes a descriptor. An existing entry for the same id
  /// keeps the *younger* age. Returns false when the view is full and the
  /// id is new (caller decides the eviction policy).
  bool insert(NodeDescriptor d);

  /// Inserts, evicting the oldest entry if full. Always succeeds.
  void insert_evicting_oldest(NodeDescriptor d);

  bool remove(NodeId id);

  /// Entry with the maximum age; nullopt when empty.
  [[nodiscard]] std::optional<NodeDescriptor> oldest() const;

  /// Ages every entry by one.
  void increase_age();

  /// Uniform sample of up to `count` descriptors (no replacement).
  [[nodiscard]] std::vector<NodeDescriptor> sample(Rng& rng,
                                                   std::size_t count) const;

  /// Uniform sample of up to `count` entry ids — same draws as sample(),
  /// without materializing the descriptors (the sample_peers hot path).
  [[nodiscard]] std::vector<NodeId> sample_ids(Rng& rng,
                                               std::size_t count) const;

  /// One uniformly random entry; nullopt when empty.
  [[nodiscard]] std::optional<NodeDescriptor> random_entry(Rng& rng) const;

  [[nodiscard]] const std::vector<NodeDescriptor>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::vector<NodeId> ids() const;

  void clear() { entries_.clear(); }

 private:
  std::size_t capacity_;
  std::vector<NodeDescriptor> entries_;
};

}  // namespace dataflasks::pss
