#include "pss/view.hpp"

#include <algorithm>

#include "common/ensure.hpp"

namespace dataflasks::pss {

void encode(Writer& w, const NodeDescriptor& d) {
  w.node_id(d.id);
  w.u32(d.age);
  encode_endpoint_opt(w, d.endpoint);
}

NodeDescriptor decode_descriptor(Reader& r) {
  NodeDescriptor d;
  d.id = r.node_id();
  d.age = r.u32();
  d.endpoint = decode_endpoint_opt(r);
  return d;
}

void merge_endpoint(NodeDescriptor& into, const NodeDescriptor& from) {
  if (from.endpoint.has_value() &&
      (!into.endpoint.has_value() ||
       from.endpoint->stamp > into.endpoint->stamp)) {
    into.endpoint = from.endpoint;
  }
}

View::View(std::size_t capacity) : capacity_(capacity) {
  ensure(capacity_ > 0, "View: zero capacity");
  entries_.reserve(capacity_);
}

bool View::contains(NodeId id) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [id](const NodeDescriptor& d) { return d.id == id; });
}

bool View::insert(NodeDescriptor d) {
  for (auto& entry : entries_) {
    if (entry.id == d.id) {
      entry.age = std::min(entry.age, d.age);
      merge_endpoint(entry, d);
      return true;
    }
  }
  if (full()) return false;
  entries_.push_back(d);
  return true;
}

void View::insert_evicting_oldest(NodeDescriptor d) {
  if (insert(d)) return;
  const auto victim = std::max_element(
      entries_.begin(), entries_.end(),
      [](const NodeDescriptor& a, const NodeDescriptor& b) {
        return a.age < b.age;
      });
  *victim = d;
}

bool View::remove(NodeId id) {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [id](const NodeDescriptor& d) {
                                 return d.id == id;
                               });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

std::optional<NodeDescriptor> View::oldest() const {
  if (entries_.empty()) return std::nullopt;
  return *std::max_element(entries_.begin(), entries_.end(),
                           [](const NodeDescriptor& a, const NodeDescriptor& b) {
                             return a.age < b.age;
                           });
}

void View::increase_age() {
  for (auto& entry : entries_) ++entry.age;
}

std::vector<NodeDescriptor> View::sample(Rng& rng, std::size_t count) const {
  return rng.sample(entries_, count);
}

std::vector<NodeId> View::sample_ids(Rng& rng, std::size_t count) const {
  return rng.sample_transform(entries_, count,
                              [](const NodeDescriptor& d) { return d.id; });
}

std::optional<NodeDescriptor> View::random_entry(Rng& rng) const {
  if (entries_.empty()) return std::nullopt;
  return entries_[rng.next_below(entries_.size())];
}

std::vector<NodeId> View::ids() const {
  std::vector<NodeId> out;
  out.reserve(entries_.size());
  for (const auto& d : entries_) out.push_back(d.id);
  return out;
}

}  // namespace dataflasks::pss
