#include "pss/cyclon.hpp"

#include <algorithm>

namespace dataflasks::pss {

Cyclon::Cyclon(NodeId self, net::Transport& transport, Rng rng,
               CyclonOptions options)
    : self_(self),
      transport_(transport),
      rng_(rng),
      options_(options),
      view_(options.view_size) {
  ensure(options_.shuffle_length > 0, "Cyclon: zero shuffle length");
  ensure(options_.shuffle_length <= options_.view_size,
         "Cyclon: shuffle length exceeds view size");
}

void Cyclon::bootstrap(const std::vector<NodeId>& seeds) {
  for (const NodeId seed : seeds) {
    if (seed == self_) continue;
    view_.insert_evicting_oldest(NodeDescriptor{seed, 0, std::nullopt});
  }
}

Payload Cyclon::encode_payload(
    const std::vector<NodeDescriptor>& descriptors) const {
  Writer w;
  w.vec(descriptors,
        [&w](const NodeDescriptor& d) { encode(w, d); });
  return w.take_payload();
}

std::optional<std::vector<NodeDescriptor>> Cyclon::decode_payload(
    const net::Message& msg) {
  Reader r(msg.payload);
  auto descriptors = r.vec<NodeDescriptor>(
      [&r]() { return decode_descriptor(r); });
  if (!r.finish().ok()) return std::nullopt;
  return descriptors;
}

void Cyclon::tick() {
  if (view_.empty()) return;

  view_.increase_age();

  // Step 1-2: pick the oldest neighbour and remove it. If it is alive its
  // reply re-inserts it with age 0; if dead, it is now forgotten.
  const auto oldest = view_.oldest();
  const NodeId peer = oldest->id;
  view_.remove(peer);

  // Step 3: subset of l-1 random descriptors plus a fresh self-descriptor
  // (carrying this node's current endpoint, so every shuffle refreshes the
  // recipients' routing as well as their membership).
  auto subset = view_.sample(rng_, options_.shuffle_length - 1);
  subset.push_back(NodeDescriptor{self_, 0, self_endpoint()});

  pending_sent_ = subset;
  pending_peer_ = peer;

  transport_.send(net::Message{self_, peer, kCyclonShuffleRequest,
                               encode_payload(subset)});
}

bool Cyclon::handle(const net::Message& msg) {
  if (msg.type != kCyclonShuffleRequest && msg.type != kCyclonShuffleReply) {
    return false;
  }
  const auto received = decode_payload(msg);
  if (!received) return true;  // malformed: drop, stay consistent
  notify_descriptors(*received);

  if (msg.type == kCyclonShuffleRequest) {
    // Responder: answer with a random subset (may include stale entries —
    // that is fine, ages travel with descriptors).
    const auto reply_subset = view_.sample(rng_, options_.shuffle_length);
    transport_.send(net::Message{self_, msg.src, kCyclonShuffleReply,
                                 encode_payload(reply_subset)});
    merge(*received, reply_subset);
  } else {
    // Initiator receiving the reply: replacement victims are the entries we
    // shipped out; the shuffled-away peer slot is already free.
    if (msg.src == pending_peer_) {
      merge(*received, pending_sent_);
      pending_sent_.clear();
      pending_peer_ = NodeId();
    } else {
      merge(*received, {});
    }
  }
  return true;
}

void Cyclon::merge(const std::vector<NodeDescriptor>& received,
                   const std::vector<NodeDescriptor>& sent) {
  std::vector<NodeDescriptor> fresh;
  for (const NodeDescriptor& d : received) {
    if (d.id == self_) continue;
    if (!view_.contains(d.id)) fresh.push_back(d);

    if (view_.insert(d)) continue;
    // View full: reuse a slot occupied by a descriptor we sent away, per the
    // Cyclon exchange rule; otherwise keep our entry.
    for (const NodeDescriptor& victim : sent) {
      if (view_.remove(victim.id)) {
        view_.insert(d);
        break;
      }
    }
  }
  notify_samples(fresh);
}

std::vector<NodeId> Cyclon::sample_peers(std::size_t count) {
  return view_.sample_ids(rng_, count);
}

}  // namespace dataflasks::pss
