#include "pss/newscast.hpp"

#include <algorithm>

namespace dataflasks::pss {

Newscast::Newscast(NodeId self, net::Transport& transport, Rng rng,
                   NewscastOptions options)
    : self_(self),
      transport_(transport),
      rng_(rng),
      options_(options),
      view_(options.view_size) {}

void Newscast::bootstrap(const std::vector<NodeId>& seeds) {
  for (const NodeId seed : seeds) {
    if (seed == self_) continue;
    view_.insert_evicting_oldest(NodeDescriptor{seed, 0, std::nullopt});
  }
}

Payload Newscast::encode_view_with_self() const {
  Writer w;
  std::vector<NodeDescriptor> items = view_.entries();
  items.push_back(NodeDescriptor{self_, 0, self_endpoint()});
  w.vec(items, [&w](const NodeDescriptor& d) { encode(w, d); });
  return w.take_payload();
}

void Newscast::tick() {
  view_.increase_age();
  const auto peer = view_.random_entry(rng_);
  if (!peer) return;
  transport_.send(net::Message{self_, peer->id, kNewscastExchangeRequest,
                               encode_view_with_self()});
}

bool Newscast::handle(const net::Message& msg) {
  if (msg.type != kNewscastExchangeRequest &&
      msg.type != kNewscastExchangeReply) {
    return false;
  }
  Reader r(msg.payload);
  auto received =
      r.vec<NodeDescriptor>([&r]() { return decode_descriptor(r); });
  if (!r.finish().ok()) return true;  // malformed: drop
  notify_descriptors(received);

  if (msg.type == kNewscastExchangeRequest) {
    transport_.send(net::Message{self_, msg.src, kNewscastExchangeReply,
                                 encode_view_with_self()});
  }
  merge(received);
  return true;
}

void Newscast::merge(const std::vector<NodeDescriptor>& received) {
  std::vector<NodeDescriptor> fresh;
  // Union of current view and received items, self excluded.
  std::vector<NodeDescriptor> pool = view_.entries();
  for (const NodeDescriptor& d : received) {
    if (d.id == self_) continue;
    if (!view_.contains(d.id)) fresh.push_back(d);
    bool merged = false;
    for (auto& existing : pool) {
      if (existing.id == d.id) {
        existing.age = std::min(existing.age, d.age);
        merge_endpoint(existing, d);
        merged = true;
        break;
      }
    }
    if (!merged) pool.push_back(d);
  }

  // Keep the freshest view_size items. Ties are broken randomly (from this
  // node's own stream, so still deterministic per run): a global tie-break
  // like "lowest id wins" makes every node keep the same entries and the
  // overlay collapses onto a few hubs.
  rng_.shuffle(pool);
  std::stable_sort(pool.begin(), pool.end(),
                   [](const NodeDescriptor& a, const NodeDescriptor& b) {
                     return a.age < b.age;
                   });
  if (pool.size() > options_.view_size) pool.resize(options_.view_size);

  view_.clear();
  for (const NodeDescriptor& d : pool) view_.insert(d);
  notify_samples(fresh);
}

std::vector<NodeId> Newscast::sample_peers(std::size_t count) {
  return view_.sample_ids(rng_, count);
}

}  // namespace dataflasks::pss
