// Cyclon [9]: age-based shuffling peer sampling. Each cycle the node ages
// its view, removes the oldest neighbour Q, and trades a random subset of
// descriptors with Q. Unanswered exchanges implicitly evict dead peers.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "net/transport.hpp"
#include "pss/peer_sampling.hpp"

namespace dataflasks::pss {

constexpr std::uint16_t kCyclonShuffleRequest = net::kPssTypeBase + 0;
constexpr std::uint16_t kCyclonShuffleReply = net::kPssTypeBase + 1;

struct CyclonOptions {
  std::size_t view_size = 20;      ///< c in the Cyclon paper
  std::size_t shuffle_length = 8;  ///< l: descriptors exchanged per shuffle
};

class Cyclon final : public PeerSampling {
 public:
  Cyclon(NodeId self, net::Transport& transport, Rng rng,
         CyclonOptions options = {});

  void bootstrap(const std::vector<NodeId>& seeds) override;
  void tick() override;
  bool handle(const net::Message& msg) override;
  [[nodiscard]] const View& view() const override { return view_; }
  std::vector<NodeId> sample_peers(std::size_t count) override;

  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] const CyclonOptions& options() const { return options_; }

 private:
  struct ShufflePayload {
    std::vector<NodeDescriptor> descriptors;
  };

  [[nodiscard]] Payload encode_payload(
      const std::vector<NodeDescriptor>& descriptors) const;
  [[nodiscard]] static std::optional<std::vector<NodeDescriptor>>
  decode_payload(const net::Message& msg);

  void merge(const std::vector<NodeDescriptor>& received,
             const std::vector<NodeDescriptor>& sent);

  NodeId self_;
  net::Transport& transport_;
  Rng rng_;
  CyclonOptions options_;
  View view_;
  /// Descriptors sent in the in-flight shuffle; used as replacement victims
  /// when the reply arrives (Cyclon's slot-reuse rule).
  std::vector<NodeDescriptor> pending_sent_;
  NodeId pending_peer_;
};

}  // namespace dataflasks::pss
