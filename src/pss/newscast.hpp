// Newscast [10]: timestamp-based peer sampling. Each cycle the node trades
// its *entire* view (plus a fresh self item) with one random neighbour; both
// then keep the `view_size` freshest items. Simpler than Cyclon, heavier on
// bandwidth, very robust to churn.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "net/transport.hpp"
#include "pss/peer_sampling.hpp"

namespace dataflasks::pss {

constexpr std::uint16_t kNewscastExchangeRequest = net::kPssTypeBase + 2;
constexpr std::uint16_t kNewscastExchangeReply = net::kPssTypeBase + 3;

struct NewscastOptions {
  std::size_t view_size = 20;
};

class Newscast final : public PeerSampling {
 public:
  Newscast(NodeId self, net::Transport& transport, Rng rng,
           NewscastOptions options = {});

  void bootstrap(const std::vector<NodeId>& seeds) override;
  void tick() override;
  bool handle(const net::Message& msg) override;
  [[nodiscard]] const View& view() const override { return view_; }
  std::vector<NodeId> sample_peers(std::size_t count) override;

 private:
  [[nodiscard]] Payload encode_view_with_self() const;
  void merge(const std::vector<NodeDescriptor>& received);

  NodeId self_;
  net::Transport& transport_;
  Rng rng_;
  NewscastOptions options_;
  View view_;
};

}  // namespace dataflasks::pss
