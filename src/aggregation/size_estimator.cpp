#include "aggregation/size_estimator.hpp"

#include <algorithm>
#include <cmath>

namespace dataflasks::aggregation {

SizeEstimator::SizeEstimator(NodeId self, net::Transport& transport,
                             pss::PeerSampling& pss, Rng rng,
                             SizeEstimatorOptions options)
    : self_(self),
      transport_(transport),
      pss_(pss),
      rng_(rng),
      options_(options) {
  ensure(options_.vector_size >= 3, "SizeEstimator: K must be >= 3");
  restart_epoch();
  epoch_ = 0;  // restart_epoch() bumped it; the first epoch is 0
}

void SizeEstimator::restart_epoch() {
  ++epoch_;
  ticks_in_epoch_ = 0;
  minima_.resize(options_.vector_size);
  for (auto& x : minima_) x = rng_.next_exponential(1.0);
}

double SizeEstimator::estimate_from(const std::vector<double>& x) {
  double sum = 0.0;
  for (const double v : x) sum += v;
  if (sum <= 0.0) return 1.0;
  return std::max(1.0, (static_cast<double>(x.size()) - 1.0) / sum);
}

double SizeEstimator::estimate() const {
  // Mid-epoch vectors underestimate the spread of minima early on; the
  // settled snapshot from the previous epoch is the stable answer. Before
  // the first epoch closes, fall back to the live vector.
  return settled_estimate_ > 1.0 ? settled_estimate_
                                 : estimate_from(minima_);
}

std::size_t SizeEstimator::estimated_fanout(double c) const {
  const double n = estimate();
  if (n < 2.0) return 1;
  const double f = std::ceil(std::log(n) + c);
  return f < 1.0 ? 1 : static_cast<std::size_t>(f);
}

Payload SizeEstimator::encode_state() const {
  Writer w;
  w.u64(epoch_);
  w.vec(minima_, [&w](double v) { w.f64(v); });
  return w.take_payload();
}

void SizeEstimator::tick() {
  if (++ticks_in_epoch_ >= options_.epoch_length) {
    // Close the epoch: its vector has had time to spread; snapshot it.
    settled_estimate_ = estimate_from(minima_);
    restart_epoch();
  }
  for (const NodeId peer : pss_.sample_peers(options_.gossip_fanout)) {
    if (peer == self_) continue;
    transport_.send(net::Message{self_, peer, kSizeGossip, encode_state()});
  }
}

bool SizeEstimator::handle(const net::Message& msg) {
  if (msg.type != kSizeGossip) return false;

  Reader r(msg.payload);
  const std::uint64_t peer_epoch = r.u64();
  const auto peer_minima = r.vec<double>([&r]() { return r.f64(); });
  if (!r.finish().ok()) return true;  // malformed: drop
  if (peer_minima.size() != minima_.size()) return true;  // config mismatch

  if (peer_epoch > epoch_) {
    // The peer is ahead (its epoch clock fired first): adopt its epoch so
    // the whole system converges on one round despite unsynchronised ticks.
    epoch_ = peer_epoch;
    ticks_in_epoch_ = 0;
    for (auto& x : minima_) x = rng_.next_exponential(1.0);
  } else if (peer_epoch < epoch_) {
    return true;  // stale epoch: ignore
  }

  for (std::size_t i = 0; i < minima_.size(); ++i) {
    minima_[i] = std::min(minima_[i], peer_minima[i]);
  }
  return true;
}

}  // namespace dataflasks::aggregation
