// Epidemic system-size estimation by extrema propagation (the role the
// paper's citation [24] — fault-tolerant aggregation — plays in its stack).
// DataFlasks needs ln(N)+c to size dissemination fanouts (§II), yet no node
// may hold global knowledge; this estimator provides N-hat by gossip alone.
//
// Method (Baquero et al., extrema propagation): every node draws K
// exponential(1) variates; gossip exchanges keep the element-wise MINIMUM
// of the vectors. The minimum of N exponentials is exponential with rate N,
// so after the minima have spread, sum(x) ~ Gamma(K, 1/N) and
// N-hat = (K - 1) / sum(minima) is an unbiased estimator with relative
// error ~ 1/sqrt(K-2). Epoch restarts keep the estimate live under churn.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "net/transport.hpp"
#include "pss/peer_sampling.hpp"

namespace dataflasks::aggregation {

constexpr std::uint16_t kSizeGossip = net::kSlicingTypeBase + 8;

struct SizeEstimatorOptions {
  std::size_t vector_size = 64;       ///< K: accuracy ~ 1/sqrt(K-2)
  std::size_t gossip_fanout = 1;      ///< partners per tick
  std::uint32_t epoch_length = 32;    ///< ticks before a fresh epoch starts
};

class SizeEstimator {
 public:
  SizeEstimator(NodeId self, net::Transport& transport,
                pss::PeerSampling& pss, Rng rng,
                SizeEstimatorOptions options = {});

  /// One gossip cycle: push our minima vector to random peers and advance
  /// the epoch clock.
  void tick();

  /// Consumes kSizeGossip messages; false if the type is not ours.
  bool handle(const net::Message& msg);

  /// Current estimate of the system size (>= 1). Uses the previous epoch's
  /// converged vector when available, else the live one.
  [[nodiscard]] double estimate() const;

  /// ceil(ln(N-hat)) + c, the paper's epidemic fanout, from local data only.
  [[nodiscard]] std::size_t estimated_fanout(double c) const;

  [[nodiscard]] std::uint64_t current_epoch() const { return epoch_; }

 private:
  void restart_epoch();
  [[nodiscard]] static double estimate_from(const std::vector<double>& x);
  [[nodiscard]] Payload encode_state() const;

  NodeId self_;
  net::Transport& transport_;
  pss::PeerSampling& pss_;
  Rng rng_;
  SizeEstimatorOptions options_;
  std::uint64_t epoch_ = 0;
  std::uint32_t ticks_in_epoch_ = 0;
  std::vector<double> minima_;
  double settled_estimate_ = 1.0;  ///< snapshot from the last closed epoch
};

}  // namespace dataflasks::aggregation
