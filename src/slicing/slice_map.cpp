#include "slicing/slice_map.hpp"

#include <algorithm>

#include "common/ensure.hpp"
#include "common/hash.hpp"

namespace dataflasks::slicing {

SliceId key_to_slice(const Key& key, std::uint32_t slice_count) {
  ensure(slice_count > 0, "key_to_slice: zero slices");
  return hash_to_bucket(stable_key_hash(key), slice_count);
}

SliceId rank_to_slice(double rank, std::uint32_t slice_count) {
  ensure(slice_count > 0, "rank_to_slice: zero slices");
  rank = std::clamp(rank, 0.0, 1.0);
  const auto slice = static_cast<SliceId>(rank * slice_count);
  return std::min(slice, slice_count - 1);
}

}  // namespace dataflasks::slicing
