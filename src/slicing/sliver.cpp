#include "slicing/sliver.hpp"

#include <algorithm>
#include <vector>

namespace dataflasks::slicing {

namespace {

struct SampleMsg {
  NodeId sender;
  double attribute = 0.0;
  SliceConfig config;
};

std::optional<SampleMsg> decode_sample(const net::Message& msg) {
  Reader r(msg.payload);
  SampleMsg out;
  out.sender = r.node_id();
  out.attribute = r.f64();
  out.config.slice_count = r.u32();
  out.config.epoch = r.u64();
  if (!r.finish().ok()) return std::nullopt;
  return out;
}

}  // namespace

Sliver::Sliver(NodeId self, double attribute, net::Transport& transport,
               pss::PeerSampling& pss, Rng rng, SliceConfig initial_config,
               SliverOptions options)
    : self_(self),
      attribute_(attribute),
      transport_(transport),
      pss_(pss),
      rng_(rng),
      options_(options) {
  ensure(options_.window_capacity > 0, "Sliver: zero window");
  config_ = initial_config;
  init_announced_slice();
}

Payload Sliver::encode_sample() const {
  Writer w;
  w.node_id(self_);
  w.f64(attribute_);
  w.u32(config_.slice_count);
  w.u64(config_.epoch);
  return w.take_payload();
}

double Sliver::rank_estimate() const {
  if (observations_.empty()) return 0.5;  // no information yet: middle
  // rank_before_ is maintained incrementally by observe()/expire_and_bound();
  // +1 in the denominator counts this node itself in the population.
  return static_cast<double>(rank_before_) /
         static_cast<double>(observations_.size() + 1);
}

SliceId Sliver::raw_slice() const {
  return rank_to_slice(rank_estimate(), config_.slice_count);
}

void Sliver::tick() {
  ++tick_count_;
  expire_and_bound();
  reevaluate();  // expiry can move the rank estimate
  for (const NodeId peer : pss_.sample_peers(options_.gossip_fanout)) {
    transport_.send(
        net::Message{self_, peer, kSliverSampleRequest, encode_sample()});
  }
}

bool Sliver::handle(const net::Message& msg) {
  if (msg.type != kSliverSampleRequest && msg.type != kSliverSampleReply) {
    return false;
  }
  const auto sample = decode_sample(msg);
  if (!sample) return true;  // malformed: drop

  adopt_config(sample->config);
  observe(sample->sender, sample->attribute);

  if (msg.type == kSliverSampleRequest) {
    transport_.send(
        net::Message{self_, msg.src, kSliverSampleReply, encode_sample()});
  }

  reevaluate();
  return true;
}

void Sliver::observe(NodeId node, double attribute) {
  if (node == self_) return;
  const auto [it, inserted] =
      observations_.try_emplace(node, Observation{attribute, tick_count_});
  if (inserted) {
    if (ranks_before_self(node, attribute)) ++rank_before_;
    return;
  }
  // Refresh: keep the incremental rank count exact if the attribute moved
  // across this node's own (attribute, id) order point.
  const bool was_before = ranks_before_self(node, it->second.attribute);
  const bool now_before = ranks_before_self(node, attribute);
  if (was_before != now_before) {
    now_before ? ++rank_before_ : --rank_before_;
  }
  it->second.attribute = attribute;
  it->second.last_seen = tick_count_;
}

void Sliver::expire_and_bound() {
  // Expiry compares last-seen tick stamps, so no per-entry aging pass is
  // needed every cycle: a full sweep runs only periodically, or as soon as
  // the window overflows. With max_observation_age in the hundreds, a
  // 16-tick sweep granularity is noise for freshness but cuts the per-tick
  // cost from O(window) to O(1) between sweeps.
  constexpr std::uint32_t kSweepInterval = 16;
  const bool over_capacity = observations_.size() > options_.window_capacity;
  if (!over_capacity && tick_count_ % kSweepInterval != 0) return;

  for (auto it = observations_.begin(); it != observations_.end();) {
    if (tick_count_ - it->second.last_seen > options_.max_observation_age) {
      if (ranks_before_self(it->first, it->second.attribute)) --rank_before_;
      it = observations_.erase(it);
    } else {
      ++it;
    }
  }

  // Bound memory: evict the stalest observations beyond capacity. A partial
  // partition finds the excess; no full sort of the window.
  if (observations_.size() > options_.window_capacity) {
    std::vector<std::pair<std::uint32_t, NodeId>> by_age;  // (last_seen, id)
    by_age.reserve(observations_.size());
    for (const auto& [node, obs] : observations_) {
      by_age.emplace_back(obs.last_seen, node);
    }
    const std::size_t excess =
        observations_.size() - options_.window_capacity;
    std::nth_element(by_age.begin(),
                     by_age.begin() + static_cast<std::ptrdiff_t>(excess),
                     by_age.end());
    for (std::size_t i = 0; i < excess; ++i) {
      const auto it = observations_.find(by_age[i].second);
      if (ranks_before_self(it->first, it->second.attribute)) --rank_before_;
      observations_.erase(it);
    }
  }
}

}  // namespace dataflasks::slicing
