#include "slicing/sliver.hpp"

#include <algorithm>
#include <vector>

namespace dataflasks::slicing {

namespace {

struct SampleMsg {
  NodeId sender;
  double attribute = 0.0;
  SliceConfig config;
};

std::optional<SampleMsg> decode_sample(const net::Message& msg) {
  Reader r(msg.payload);
  SampleMsg out;
  out.sender = r.node_id();
  out.attribute = r.f64();
  out.config.slice_count = r.u32();
  out.config.epoch = r.u64();
  if (!r.finish().ok()) return std::nullopt;
  return out;
}

}  // namespace

Sliver::Sliver(NodeId self, double attribute, net::Transport& transport,
               pss::PeerSampling& pss, Rng rng, SliceConfig initial_config,
               SliverOptions options)
    : self_(self),
      attribute_(attribute),
      transport_(transport),
      pss_(pss),
      rng_(rng),
      options_(options) {
  ensure(options_.window_capacity > 0, "Sliver: zero window");
  config_ = initial_config;
  init_announced_slice();
}

Bytes Sliver::encode_sample() const {
  Writer w;
  w.node_id(self_);
  w.f64(attribute_);
  w.u32(config_.slice_count);
  w.u64(config_.epoch);
  return w.take();
}

double Sliver::rank_estimate() const {
  if (observations_.empty()) return 0.5;  // no information yet: middle
  std::size_t before = 0;
  for (const auto& [node, obs] : observations_) {
    // Total order on (attribute, id) so equal capacities still get distinct
    // ranks (ties broken by node id).
    if (obs.attribute < attribute_ ||
        (obs.attribute == attribute_ && node < self_)) {
      ++before;
    }
  }
  // +1 in the denominator counts this node itself in the population.
  return static_cast<double>(before) /
         static_cast<double>(observations_.size() + 1);
}

SliceId Sliver::raw_slice() const {
  return rank_to_slice(rank_estimate(), config_.slice_count);
}

void Sliver::tick() {
  expire_and_bound();
  reevaluate();  // expiry can move the rank estimate
  for (const NodeId peer : pss_.sample_peers(options_.gossip_fanout)) {
    transport_.send(
        net::Message{self_, peer, kSliverSampleRequest, encode_sample()});
  }
}

bool Sliver::handle(const net::Message& msg) {
  if (msg.type != kSliverSampleRequest && msg.type != kSliverSampleReply) {
    return false;
  }
  const auto sample = decode_sample(msg);
  if (!sample) return true;  // malformed: drop

  adopt_config(sample->config);
  observe(sample->sender, sample->attribute);

  if (msg.type == kSliverSampleRequest) {
    transport_.send(
        net::Message{self_, msg.src, kSliverSampleReply, encode_sample()});
  }

  reevaluate();
  return true;
}

void Sliver::observe(NodeId node, double attribute) {
  if (node == self_) return;
  observations_[node] = Observation{attribute, 0};
}

void Sliver::expire_and_bound() {
  for (auto it = observations_.begin(); it != observations_.end();) {
    if (++it->second.age > options_.max_observation_age) {
      it = observations_.erase(it);
    } else {
      ++it;
    }
  }
  // Bound memory: evict the oldest observations beyond capacity.
  if (observations_.size() > options_.window_capacity) {
    std::vector<std::pair<NodeId, std::uint32_t>> by_age;
    by_age.reserve(observations_.size());
    for (const auto& [node, obs] : observations_) {
      by_age.emplace_back(node, obs.age);
    }
    std::sort(by_age.begin(), by_age.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    const std::size_t excess = observations_.size() - options_.window_capacity;
    for (std::size_t i = 0; i < excess; ++i) {
      observations_.erase(by_age[i].first);
    }
  }
}

}  // namespace dataflasks::slicing
