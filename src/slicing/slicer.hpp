// Distributed slicing interface (paper §II, §IV-A). A slicer autonomously
// assigns its node to one of k slices ordered by a locally measured
// attribute (storage capacity in the paper), using only gossip — no global
// knowledge. Implementations: OrderedSlicing (rank-value swapping, [13]) and
// Sliver (observed-attribute counting, [12]).
#pragma once

#include <algorithm>
#include <functional>

#include "net/message.hpp"
#include "slicing/slice_map.hpp"

namespace dataflasks::slicing {

class Slicer {
 public:
  /// Fired when the node's slice assignment changes; DataFlasks uses it to
  /// trigger state transfer (paper §VII).
  using SliceChangeListener = std::function<void(SliceId from, SliceId to)>;

  virtual ~Slicer() = default;

  /// One gossip cycle.
  virtual void tick() = 0;

  /// Consumes slicing-protocol messages; false if the type is not ours.
  virtual bool handle(const net::Message& msg) = 0;

  /// Instantaneous slice implied by the current rank estimate and config.
  /// Rank estimates jitter, so this can flap at slice boundaries.
  [[nodiscard]] virtual SliceId raw_slice() const = 0;

  /// The *announced* slice: raw_slice() filtered through hysteresis. This
  /// is what routing, storage and replication key on — without damping, a
  /// boundary node would flap between slices and thrash state transfer and
  /// replica placement (the paper's §VII warning that careless slice moves
  /// "can have a serious impact in performance and persistence").
  [[nodiscard]] SliceId slice() const { return announced_slice_; }

  /// Estimated normalized rank of this node's attribute, in [0,1).
  [[nodiscard]] virtual double rank_estimate() const = 0;

  /// The node's attribute (higher = more capacity = later slice).
  [[nodiscard]] virtual double attribute() const = 0;

  [[nodiscard]] const SliceConfig& config() const { return config_; }

  /// Locally adopts a new config (higher epoch wins); piggybacked on gossip
  /// so it spreads epidemically.
  void adopt_config(const SliceConfig& candidate) {
    if (config_.superseded_by(candidate)) {
      config_ = candidate;
      reevaluate();
    }
  }

  void set_slice_change_listener(SliceChangeListener listener) {
    listener_ = std::move(listener);
  }

  /// Evaluations a new raw slice must persist for before it is announced.
  /// 1 disables damping (useful in unit tests).
  void set_slice_hysteresis(std::uint32_t evaluations) {
    hysteresis_ = evaluations == 0 ? 1 : evaluations;
  }

 protected:
  /// Derived constructors call this once their rank state exists.
  void init_announced_slice() { announced_slice_ = raw_slice(); }

  /// Derived classes call this after every state mutation (tick or message).
  ///
  /// Rank estimates are noisy (jitter ~ 1/sqrt(observations)), which is the
  /// same order as a slice's width for moderate k — so a plain raw_slice()
  /// comparison flaps forever at boundaries. Two filters apply before a
  /// change is announced:
  ///  - spatial: the estimate must sit clearly *interior* to the new slice
  ///    (margin fraction of the slice width away from both edges), and be
  ///    seen `hysteresis_` consecutive times;
  ///  - fallback: a node parked exactly on a boundary after a true shift
  ///    still moves once the same new slice persists 10x longer.
  void reevaluate() {
    const SliceId raw = raw_slice();
    if (raw == announced_slice_) {
      pending_count_ = 0;
      return;
    }
    if (raw != pending_slice_) {
      pending_slice_ = raw;
      pending_count_ = 1;
    } else {
      ++pending_count_;
    }

    const double width = 1.0 / static_cast<double>(config_.slice_count);
    const double rank = std::clamp(rank_estimate(), 0.0, 1.0);
    const double lower = static_cast<double>(raw) * width;
    const bool clear_of_lower =
        raw == 0 || rank >= lower + kBoundaryMargin * width;
    const bool clear_of_upper = raw == config_.slice_count - 1 ||
                                rank <= lower + width - kBoundaryMargin * width;
    const bool interior = clear_of_lower && clear_of_upper;

    if ((interior && pending_count_ >= hysteresis_) ||
        pending_count_ >= 10 * hysteresis_) {
      const SliceId from = announced_slice_;
      announced_slice_ = raw;
      pending_count_ = 0;
      if (listener_) listener_(from, raw);
    }
  }

  SliceConfig config_;

 private:
  static constexpr double kBoundaryMargin = 0.2;

  SliceChangeListener listener_;
  SliceId announced_slice_ = 0;
  SliceId pending_slice_ = 0;
  std::uint32_t pending_count_ = 0;
  std::uint32_t hysteresis_ = 3;
};

}  // namespace dataflasks::slicing
