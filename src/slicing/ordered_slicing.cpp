#include "slicing/ordered_slicing.hpp"

namespace dataflasks::slicing {

namespace {

// Exchange payload layout:
//   u8   is_swap      (request: always 0; reply: 1 when the partner swapped)
//   f64  attribute    (sender's attribute; unused in swap replies)
//   u64  sender_id_for_tiebreak
//   f64  random_value
//   u64  proposal_seq (echoed in replies so the initiator can detect races)
//   u32  slice_count, u64 epoch (piggybacked config)
struct ExchangeMsg {
  bool is_swap = false;
  double attribute = 0.0;
  NodeId sender;
  double random_value = 0.0;
  std::uint64_t proposal_seq = 0;
  SliceConfig config;
};

std::optional<ExchangeMsg> decode_exchange(const net::Message& msg) {
  Reader r(msg.payload);
  ExchangeMsg out;
  out.is_swap = r.boolean();
  out.attribute = r.f64();
  out.sender = r.node_id();
  out.random_value = r.f64();
  out.proposal_seq = r.u64();
  out.config.slice_count = r.u32();
  out.config.epoch = r.u64();
  if (!r.finish().ok()) return std::nullopt;
  return out;
}

}  // namespace

OrderedSlicing::OrderedSlicing(NodeId self, double attribute,
                               net::Transport& transport,
                               pss::PeerSampling& pss, Rng rng,
                               SliceConfig initial_config)
    : self_(self),
      attribute_(attribute),
      transport_(transport),
      pss_(pss),
      rng_(rng),
      random_value_(rng_.next_double()) {
  config_ = initial_config;
  init_announced_slice();
}

SliceId OrderedSlicing::raw_slice() const {
  return rank_to_slice(random_value_, config_.slice_count);
}

bool OrderedSlicing::orders_before(double attr, NodeId id) const {
  if (attribute_ != attr) return attribute_ < attr;
  return self_ < id;
}

Payload OrderedSlicing::encode_exchange(bool is_swap, double random_value,
                                      std::uint64_t proposal_seq) const {
  Writer w;
  w.boolean(is_swap);
  w.f64(attribute_);
  w.node_id(self_);
  w.f64(random_value);
  w.u64(proposal_seq);
  w.u32(config_.slice_count);
  w.u64(config_.epoch);
  return w.take_payload();
}

void OrderedSlicing::tick() {
  const auto peers = pss_.sample_peers(1);
  if (peers.empty()) return;
  transport_.send(net::Message{
      self_, peers.front(), kRankExchangeRequest,
      encode_exchange(false, random_value_, proposal_seq_)});
}

bool OrderedSlicing::handle(const net::Message& msg) {
  if (msg.type != kRankExchangeRequest && msg.type != kRankExchangeReply) {
    return false;
  }
  const auto exchange = decode_exchange(msg);
  if (!exchange) return true;  // malformed: drop

  adopt_config(exchange->config);

  if (msg.type == kRankExchangeRequest) {
    // Responder decides atomically whether the pair is misordered.
    const bool i_order_first = orders_before(exchange->attribute,
                                             exchange->sender);
    const bool my_value_smaller = random_value_ < exchange->random_value;
    const bool misordered = (i_order_first != my_value_smaller) &&
                            random_value_ != exchange->random_value;
    if (misordered) {
      const double mine = random_value_;
      random_value_ = exchange->random_value;  // adopt theirs
      ++proposal_seq_;
      transport_.send(net::Message{
          self_, msg.src, kRankExchangeReply,
          encode_exchange(true, mine, exchange->proposal_seq)});
    } else {
      transport_.send(net::Message{
          self_, msg.src, kRankExchangeReply,
          encode_exchange(false, random_value_, exchange->proposal_seq)});
    }
  } else if (exchange->is_swap) {
    // Initiator: apply the swap only if our value did not change since the
    // proposal (otherwise a rank value would be silently dropped).
    if (exchange->proposal_seq == proposal_seq_) {
      random_value_ = exchange->random_value;
      ++proposal_seq_;
    }
  }

  reevaluate();
  return true;
}

}  // namespace dataflasks::slicing
