// Pure slice-mapping functions shared by nodes and clients. Both sides must
// agree exactly on key -> slice for routing to work, so this logic lives in
// one place and is deterministic.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace dataflasks::slicing {

/// Maps an object key onto one of k slices via its stable hash (uniform
/// range split of the 64-bit hash space).
[[nodiscard]] SliceId key_to_slice(const Key& key, std::uint32_t slice_count);

/// Maps a normalized attribute rank in [0,1] onto a slice index.
/// rank == 1.0 maps to the last slice.
[[nodiscard]] SliceId rank_to_slice(double rank, std::uint32_t slice_count);

/// Slice configuration disseminated epidemically. Nodes adopt the config
/// with the highest epoch, which lets an operator re-shard a live system
/// (the paper's "dynamic configuration of the slicing mechanism", §IV-C).
struct SliceConfig {
  std::uint32_t slice_count = 1;
  std::uint64_t epoch = 0;

  friend bool operator==(const SliceConfig&, const SliceConfig&) = default;

  /// True when `other` should replace this config.
  [[nodiscard]] bool superseded_by(const SliceConfig& other) const {
    return other.epoch > epoch;
  }
};

}  // namespace dataflasks::slicing
