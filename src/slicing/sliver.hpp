// Sliver (Gramoli et al. [12]): rank estimation by counting. Each node
// remembers a bounded sliding window of (node, attribute) pairs it has seen
// through gossip and estimates its rank as the fraction of observed
// attributes ordered before its own. Faster convergence than value swapping
// and naturally self-healing under churn (stale observations expire).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/rng.hpp"
#include "net/transport.hpp"
#include "pss/peer_sampling.hpp"
#include "slicing/slicer.hpp"

namespace dataflasks::slicing {

constexpr std::uint16_t kSliverSampleRequest = net::kSlicingTypeBase + 2;
constexpr std::uint16_t kSliverSampleReply = net::kSlicingTypeBase + 3;

struct SliverOptions {
  /// Max remembered observations. Rank jitter ~ 1/(2 sqrt(window)), and a
  /// node flaps when jitter approaches the slice width 1/k — size the
  /// window for the largest k you expect.
  std::size_t window_capacity = 384;
  std::uint32_t max_observation_age = 192;  ///< ticks before expiry
  std::size_t gossip_fanout = 1;  ///< partners contacted per tick
};

class Sliver final : public Slicer {
 public:
  Sliver(NodeId self, double attribute, net::Transport& transport,
         pss::PeerSampling& pss, Rng rng, SliceConfig initial_config,
         SliverOptions options = {});

  void tick() override;
  bool handle(const net::Message& msg) override;
  [[nodiscard]] SliceId raw_slice() const override;
  [[nodiscard]] double rank_estimate() const override;
  [[nodiscard]] double attribute() const override { return attribute_; }

  [[nodiscard]] std::size_t observation_count() const {
    return observations_.size();
  }

 private:
  struct Observation {
    double attribute = 0.0;
    std::uint32_t last_seen = 0;  ///< tick count at the latest observation
  };

  /// Total order on (attribute, id): does `node` rank before this node?
  [[nodiscard]] bool ranks_before_self(NodeId node, double attribute) const {
    return attribute < attribute_ ||
           (attribute == attribute_ && node < self_);
  }

  void observe(NodeId node, double attribute);
  void expire_and_bound();
  [[nodiscard]] Payload encode_sample() const;

  NodeId self_;
  double attribute_;
  net::Transport& transport_;
  pss::PeerSampling& pss_;
  Rng rng_;
  SliverOptions options_;
  std::unordered_map<NodeId, Observation> observations_;
  /// Incremental count of observations ranking before this node, so
  /// rank_estimate() is O(1) per gossip message instead of an O(window)
  /// scan (the dominant cost at 1000+ nodes before this cache existed).
  std::size_t rank_before_ = 0;
  std::uint32_t tick_count_ = 0;
};

}  // namespace dataflasks::slicing
