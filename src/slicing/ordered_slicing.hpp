// Ordered slicing (Jelasity & Kermarrec [13]): every node draws a uniform
// random value r in [0,1); gossip partners whose (attribute, random-value)
// orderings disagree swap random values. At convergence the random values
// are sorted like the attributes, so r approximates the normalized rank and
// floor(r * k) is the node's slice.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "net/transport.hpp"
#include "pss/peer_sampling.hpp"
#include "slicing/slicer.hpp"

namespace dataflasks::slicing {

constexpr std::uint16_t kRankExchangeRequest = net::kSlicingTypeBase + 0;
constexpr std::uint16_t kRankExchangeReply = net::kSlicingTypeBase + 1;

class OrderedSlicing final : public Slicer {
 public:
  /// `attribute`: the slicing criterion (storage capacity in the paper).
  /// `pss`: source of random gossip partners.
  OrderedSlicing(NodeId self, double attribute, net::Transport& transport,
                 pss::PeerSampling& pss, Rng rng, SliceConfig initial_config);

  void tick() override;
  bool handle(const net::Message& msg) override;
  [[nodiscard]] SliceId raw_slice() const override;
  [[nodiscard]] double rank_estimate() const override { return random_value_; }
  [[nodiscard]] double attribute() const override { return attribute_; }

 private:
  /// Total order on (attribute, node id): ties in attribute are broken by
  /// id so every node has a distinct rank.
  [[nodiscard]] bool orders_before(double attr, NodeId id) const;

  [[nodiscard]] Payload encode_exchange(bool is_swap, double random_value,
                                      std::uint64_t proposal_seq) const;

  NodeId self_;
  double attribute_;
  net::Transport& transport_;
  pss::PeerSampling& pss_;
  Rng rng_;
  double random_value_;
  /// Guards in-flight proposals: a reply only applies if we did not swap
  /// with someone else in between (avoids losing rank values).
  std::uint64_t proposal_seq_ = 0;
};

}  // namespace dataflasks::slicing
