#include "server/config.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/logging.hpp"

namespace dataflasks::server {

namespace {

/// Cap on configured periods (one day): keeps `period_ms * kMillis` far
/// from int64 overflow and turns absurd values into parse-time errors
/// instead of a negative-period abort at node start.
constexpr std::uint64_t kMaxPeriodMs = 24ull * 60 * 60 * 1000;

bool parse_u64(const std::string& text, std::uint64_t& out) {
  const char* end = text.data() + text.size();
  const auto [p, ec] = std::from_chars(text.data(), end, out);
  return ec == std::errc() && p == end && !text.empty();
}

bool parse_u16(const std::string& text, std::uint16_t& out) {
  std::uint64_t v = 0;
  if (!parse_u64(text, v) || v > 0xFFFF) return false;
  out = static_cast<std::uint16_t>(v);
  return true;
}

bool parse_f64(const std::string& text, double& out) {
  std::istringstream in(text);
  in >> out;
  return static_cast<bool>(in) && in.eof();
}

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return {};
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

/// Applies one `key = value` entry. Returns an error string, empty on ok.
std::string apply_entry(ServerConfig& config, const std::string& key,
                        const std::string& value) {
  std::uint64_t u64 = 0;
  if (key == "id") {
    if (!parse_u64(value, config.id)) return "bad id: " + value;
  } else if (key == "listen") {
    if (!parse_host_port(value, config.listen_host, config.listen_port)) {
      return "bad listen address: " + value;
    }
  } else if (key == "advertise") {
    if (value.empty()) return "bad advertise host: empty";
    config.advertise_host = value;
  } else if (key == "peer") {
    PeerSpec peer;
    if (!parse_peer_spec(value, peer)) return "bad peer spec: " + value;
    config.peers.push_back(peer);
  } else if (key == "capacity") {
    if (!parse_f64(value, config.capacity) || config.capacity <= 0) {
      return "bad capacity: " + value;
    }
  } else if (key == "seed") {
    // Overloaded historically: a bare integer is the RNG seed; host:port
    // is a join contact whose node id is discovered by probing at boot.
    // Parse into a local first — from_chars writes through on a partial
    // match like "127.0.0.1:7100", which must not corrupt the RNG seed.
    if (std::uint64_t rng_seed = 0; parse_u64(value, rng_seed)) {
      config.seed = rng_seed;
      return {};
    }
    SeedSpec contact;
    if (!parse_host_port(value, contact.host, contact.port) ||
        contact.port == 0) {
      return "bad seed (RNG integer or host:port contact): " + value;
    }
    config.seeds.push_back(contact);
  } else if (key == "slices") {
    if (!parse_u64(value, u64) || u64 == 0 || u64 > 0xFFFFFFFFULL) {
      return "bad slice count: " + value;
    }
    config.slices = static_cast<std::uint32_t>(u64);
  } else if (key == "gossip_ms") {
    if (!parse_u64(value, u64) || u64 == 0 || u64 > kMaxPeriodMs) {
      return "bad gossip_ms: " + value;
    }
    config.gossip_ms = static_cast<std::int64_t>(u64);
  } else if (key == "ae_ms") {
    if (!parse_u64(value, u64) || u64 == 0 || u64 > kMaxPeriodMs) {
      return "bad ae_ms: " + value;
    }
    config.ae_ms = static_cast<std::int64_t>(u64);
  } else if (key == "store") {
    if (value == "memory") {
      config.store = StoreKind::kMemory;
    } else if (value == "durable") {
      config.store = StoreKind::kDurable;
    } else if (value == "log") {
      config.store = StoreKind::kLog;
    } else {
      return "bad store kind (memory|durable|log): " + value;
    }
  } else if (key == "data_dir") {
    if (value.empty()) return "bad data_dir: empty";
    config.data_dir = value;
  } else if (key == "metrics_port") {
    if (!parse_u64(value, u64) || u64 > 0xFFFF) {
      return "bad metrics_port (0-65535): " + value;
    }
    config.metrics_port = static_cast<std::int32_t>(u64);
  } else if (key == "stream_port") {
    if (!parse_u64(value, u64) || u64 > 0xFFFF) {
      return "bad stream_port (0-65535): " + value;
    }
    config.stream_port = static_cast<std::int32_t>(u64);
  } else if (key == "log_level") {
    if (!log_level_from_string(value)) return "bad log_level: " + value;
    config.log_level = value;
  } else if (key == "max_inflight_ops") {
    if (!parse_u64(value, config.max_inflight_ops)) {
      return "bad max_inflight_ops: " + value;
    }
  } else if (key == "shed_queue_high") {
    if (!parse_u64(value, config.shed_queue_high) ||
        config.shed_queue_high == 0) {
      return "bad shed_queue_high: " + value;
    }
  } else if (key == "shed_queue_low") {
    if (!parse_u64(value, config.shed_queue_low)) {
      return "bad shed_queue_low: " + value;
    }
  } else if (key == "shed_lag_high_ms") {
    if (!parse_u64(value, u64) || u64 == 0 || u64 > kMaxPeriodMs) {
      return "bad shed_lag_high_ms: " + value;
    }
    config.shed_lag_high_ms = static_cast<std::int64_t>(u64);
  } else if (key == "shed_lag_low_ms") {
    if (!parse_u64(value, u64) || u64 > kMaxPeriodMs) {
      return "bad shed_lag_low_ms: " + value;
    }
    config.shed_lag_low_ms = static_cast<std::int64_t>(u64);
  } else if (key == "compact_interval_sec") {
    // Seconds, bounded like the ms-based periods (a day in seconds is far
    // under kMaxPeriodMs, reused here for one consistent sanity cap).
    if (!parse_u64(value, config.compact_interval_sec) ||
        config.compact_interval_sec > kMaxPeriodMs / 1000) {
      return "bad compact_interval_sec: " + value;
    }
  } else if (key == "max_store_bytes") {
    if (!parse_u64(value, config.max_store_bytes)) {
      return "bad max_store_bytes: " + value;
    }
  } else if (key == "reap_ms") {
    if (!parse_u64(value, u64) || u64 > kMaxPeriodMs) {
      return "bad reap_ms: " + value;
    }
    config.reap_ms = static_cast<std::int64_t>(u64);
  } else if (key == "shards") {
    // 0 = auto (hardware concurrency). Capped: beyond 16 shards the
    // cross-shard mail and REUSEPORT group outgrow any machine this runs on.
    if (!parse_u64(value, u64) || u64 > 16) {
      return "bad shards (0=auto, 1-16): " + value;
    }
    config.shards = static_cast<std::uint32_t>(u64);
  } else if (key == "shed_trickle_per_sec") {
    if (!parse_u64(value, config.shed_trickle_per_sec) ||
        config.shed_trickle_per_sec == 0) {
      return "bad shed_trickle_per_sec: " + value;
    }
  } else {
    return "unknown config key: " + key;
  }
  return {};
}

}  // namespace

bool parse_host_port(const std::string& text, std::string& host,
                     std::uint16_t& port) {
  const auto colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  if (!parse_u16(text.substr(colon + 1), port)) return false;
  host = text.substr(0, colon);
  return true;
}

bool parse_peer_spec(const std::string& text, PeerSpec& out) {
  const auto at = text.find('@');
  if (at == std::string::npos || at == 0) return false;
  if (!parse_u64(text.substr(0, at), out.id)) return false;
  return parse_host_port(text.substr(at + 1), out.host, out.port);
}

core::NodeOptions ServerConfig::node_options() const {
  core::NodeOptions options;
  const SimTime gossip = gossip_ms * kMillis;
  options.pss_period = gossip;
  options.slicing_period = gossip;
  options.advert_period = gossip;
  options.ae_period = ae_ms * kMillis;
  options.st_tick_period = 2 * gossip;
  options.handoff_period = 3 * gossip;
  options.slice_config = {slices, /*epoch=*/1};

  options.admission.enabled = max_inflight_ops > 0;
  options.admission.max_inflight_ops =
      static_cast<std::size_t>(max_inflight_ops);
  options.admission.queue_high = static_cast<std::size_t>(shed_queue_high);
  options.admission.queue_low = static_cast<std::size_t>(shed_queue_low);
  options.admission.lag_high = shed_lag_high_ms * kMillis;
  options.admission.lag_low = shed_lag_low_ms * kMillis;
  options.admission.maintenance_trickle_per_sec =
      static_cast<std::uint32_t>(shed_trickle_per_sec);

  options.expiry_reap_period = reap_ms * kMillis;
  options.max_store_bytes = static_cast<std::size_t>(max_store_bytes);
  options.compact_period =
      static_cast<SimTime>(compact_interval_sec) * kSeconds;
  return options;
}

std::size_t ServerConfig::resolved_shards() const {
  if (shards != 0) return shards;
  const unsigned cores = std::thread::hardware_concurrency();
  return std::min<std::size_t>(16, std::max<std::size_t>(1, cores));
}

std::string ServerConfig::store_path() const {
  return store_base_path() + ".log";
}

std::string ServerConfig::store_base_path() const {
  std::string dir = data_dir;
  if (!dir.empty() && dir.back() != '/') dir.push_back('/');
  return dir + "dataflasks-" + std::to_string(id);
}

std::vector<NodeId> ServerConfig::peer_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(peers.size());
  for (const PeerSpec& peer : peers) ids.emplace_back(peer.id);
  return ids;
}

Result<ServerConfig> load_config_file(const std::string& path,
                                      ServerConfig config) {
  std::ifstream in(path);
  if (!in) return Error::io("cannot open config file: " + path);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      return Error::invalid_argument(path + ":" + std::to_string(line_no) +
                                     ": expected key = value");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    const std::string err = apply_entry(config, key, value);
    if (!err.empty()) {
      return Error::invalid_argument(path + ":" + std::to_string(line_no) +
                                     ": " + err);
    }
  }
  return config;
}

Result<ServerConfig> parse_server_args(const std::vector<std::string>& args,
                                       std::vector<std::string>* positional) {
  ServerConfig config;
  // First pass: an explicit config file establishes the baseline so every
  // other flag overrides it regardless of ordering.
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == "--config") {
      auto loaded = load_config_file(args[i + 1], std::move(config));
      if (!loaded) return loaded.error();
      config = std::move(loaded).value();
    }
  }

  const auto flag_key = [](const std::string& flag) -> std::string {
    if (flag == "--id") return "id";
    if (flag == "--listen") return "listen";
    if (flag == "--advertise") return "advertise";
    if (flag == "--peer") return "peer";
    if (flag == "--capacity") return "capacity";
    if (flag == "--seed") return "seed";
    if (flag == "--slices") return "slices";
    if (flag == "--gossip-ms") return "gossip_ms";
    if (flag == "--ae-ms") return "ae_ms";
    if (flag == "--store") return "store";
    if (flag == "--data-dir") return "data_dir";
    if (flag == "--metrics-port") return "metrics_port";
    if (flag == "--stream-port") return "stream_port";
    if (flag == "--log-level") return "log_level";
    if (flag == "--max-inflight-ops") return "max_inflight_ops";
    if (flag == "--shed-queue-high") return "shed_queue_high";
    if (flag == "--shed-queue-low") return "shed_queue_low";
    if (flag == "--shed-lag-high-ms") return "shed_lag_high_ms";
    if (flag == "--shed-lag-low-ms") return "shed_lag_low_ms";
    if (flag == "--shed-trickle-per-sec") return "shed_trickle_per_sec";
    if (flag == "--compact-interval-sec") return "compact_interval_sec";
    if (flag == "--max-store-bytes") return "max_store_bytes";
    if (flag == "--reap-ms") return "reap_ms";
    if (flag == "--shards") return "shards";
    return {};
  };

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--config") {
      // Loaded in the first pass — but a trailing --config with no value
      // must still be an error, not a silently default-configured server.
      if (i + 1 >= args.size()) {
        return Error::invalid_argument("--config requires a value");
      }
      ++i;
      continue;
    }
    const std::string key = flag_key(arg);
    if (!key.empty()) {
      if (i + 1 >= args.size()) {
        return Error::invalid_argument(arg + " requires a value");
      }
      const std::string err = apply_entry(config, key, args[++i]);
      if (!err.empty()) return Error::invalid_argument(err);
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      return Error::invalid_argument("unknown flag: " + arg);
    }
    if (positional != nullptr) {
      positional->push_back(arg);
      continue;
    }
    return Error::invalid_argument("unexpected argument: " + arg);
  }
  return config;
}

}  // namespace dataflasks::server
