// dataflasks_cli: one-shot put/get against a live DataFlasks cluster over
// UDP — the paper's client library (request dedup, retries, load balancing)
// driven by the real-clock runtime instead of the simulator.
//
//   $ dataflasks_cli --peer 0@127.0.0.1:7100 put greeting "hello world"
//   $ dataflasks_cli --peer 0@127.0.0.1:7100 get greeting
//
// Exit codes: 0 success, 1 usage/config error, 2 request failed (timeout or
// miss after retries).
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "client/client.hpp"
#include "client/load_balancer.hpp"
#include "net/udp_transport.hpp"
#include "runtime/real_time_runtime.hpp"
#include "server/config.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: dataflasks_cli --peer ID@HOST:PORT [--peer ...]\n"
               "         [--timeout-ms N] [--version N] [--seed N]\n"
               "         put <key> <value> | get <key>\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dataflasks;

  std::vector<server::PeerSpec> peers;
  std::int64_t timeout_ms = 2000;
  Version version = 1;
  std::uint64_t seed = 0;
  std::vector<std::string> positional;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--peer") {
      const char* value = next();
      server::PeerSpec peer;
      if (value == nullptr || !server::parse_peer_spec(value, peer)) {
        std::fprintf(stderr, "dataflasks_cli: bad --peer spec\n");
        return usage();
      }
      peers.push_back(peer);
    } else if (arg == "--timeout-ms") {
      const char* value = next();
      if (value == nullptr || (timeout_ms = std::atoll(value)) <= 0) {
        return usage();
      }
    } else if (arg == "--version") {
      const char* value = next();
      if (value == nullptr) return usage();
      version = static_cast<Version>(std::strtoull(value, nullptr, 10));
    } else if (arg == "--seed") {
      const char* value = next();
      if (value == nullptr) return usage();
      seed = std::strtoull(value, nullptr, 10);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "dataflasks_cli: unknown flag %s\n", arg.c_str());
      return usage();
    } else {
      positional.push_back(arg);
    }
  }

  if (peers.empty() || positional.empty()) return usage();
  const std::string& command = positional[0];
  const bool is_put = command == "put";
  const bool is_get = command == "get";
  if ((is_put && positional.size() != 3) || (is_get && positional.size() != 2)
      || (!is_put && !is_get)) {
    return usage();
  }

  // Ephemeral client identity: high bits tag "client", low bits the pid so
  // concurrent CLI invocations do not collide (replies are routed by the
  // learned source address of this process's socket either way).
  const std::uint64_t pid = static_cast<std::uint64_t>(::getpid());
  const NodeId client_id(0x00C11E0000000000ULL | pid);
  if (seed == 0) seed = 0xC11E5EEDULL ^ (pid << 16);

  runtime::RealTimeRuntime rt(seed);
  net::UdpTransport transport(rt, {});  // ephemeral local port
  std::vector<NodeId> contact_ids;
  for (const server::PeerSpec& peer : peers) {
    transport.add_peer(NodeId(peer.id), peer.host, peer.port);
    contact_ids.emplace_back(peer.id);
  }

  client::RandomLoadBalancer balancer(contact_ids, rt.rng().fork(1));
  client::ClientOptions options;
  // Every attempt must fit inside the run window below, so the failure
  // callback always fires (and prints) before the deadline.
  options.max_attempts = 3;
  options.request_timeout =
      std::max<std::int64_t>(timeout_ms / options.max_attempts, 50) * kMillis;
  client::Client client(client_id, transport, rt, balancer,
                        rt.rng().fork(2), options);

  int exit_code = 2;
  bool completed = false;
  if (is_put) {
    const std::string& key = positional[1];
    const std::string& value = positional[2];
    client.put(key, Payload(ByteView(
                   reinterpret_cast<const std::uint8_t*>(value.data()),
                   value.size())),
               version, [&](const client::PutResult& result) {
                 if (result.ok) {
                   std::printf("OK put %s v%llu -> replica n%llu "
                               "(%u attempts, %.1f ms)\n",
                               result.key.c_str(),
                               static_cast<unsigned long long>(result.version),
                               static_cast<unsigned long long>(
                                   result.replica.value),
                               result.attempts,
                               result.latency / static_cast<double>(kMillis));
                   exit_code = 0;
                 } else {
                   std::fprintf(stderr, "FAILED put %s (%u attempts)\n",
                                result.key.c_str(), result.attempts);
                 }
                 completed = true;
                 rt.stop();
               });
  } else {
    const std::string& key = positional[1];
    client.get(key, std::nullopt, [&](const client::GetResult& result) {
      if (result.ok) {
        const std::string text(result.object.value.begin(),
                               result.object.value.end());
        std::printf("OK get %s v%llu = %s (replica n%llu, %.1f ms)\n",
                    result.object.key.c_str(),
                    static_cast<unsigned long long>(result.object.version),
                    text.c_str(),
                    static_cast<unsigned long long>(result.replica.value),
                    result.latency / static_cast<double>(kMillis));
        exit_code = 0;
      } else {
        std::fprintf(stderr, "FAILED get %s (%u attempts)\n", key.c_str(),
                     result.attempts);
      }
      completed = true;
      rt.stop();
    });
  }

  // Headroom beyond the final attempt's timeout, so the failure callback
  // (not this deadline) is what normally ends an unsuccessful run.
  rt.run_for((timeout_ms + 500) * kMillis);
  if (!completed) {
    // A get of an absent key can sit forever on authoritative misses (the
    // client ignores found=false replies by design); report it explicitly.
    std::fprintf(stderr, "TIMEOUT %s %s (no conclusive reply)\n",
                 command.c_str(), positional[1].c_str());
  }
  if (exit_code != 0 && transport.total_delivered() == 0) {
    std::fprintf(stderr,
                 "dataflasks_cli: no replies received — is the cluster up?\n");
  }
  return exit_code;
}
