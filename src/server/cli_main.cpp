// dataflasks_cli: one-shot operations against a live DataFlasks cluster
// over UDP — the paper's client library (request dedup, retries, load
// balancing) driven by the real-clock runtime through the futures-based
// Session surface.
//
//   $ dataflasks_cli --peer 0@127.0.0.1:7100 put greeting "hello world"
//   $ dataflasks_cli --peer 0@127.0.0.1:7100 get greeting
//   $ dataflasks_cli --peer 0@127.0.0.1:7100 del greeting
//   $ dataflasks_cli --peer 0@127.0.0.1:7100 cas greeting 0 "first write"
//   $ dataflasks_cli --peer 0@127.0.0.1:7100 stats
//   $ printf 'put k1 v1\nput k2 v2\nget k1\n' |
//       dataflasks_cli --peer 0@127.0.0.1:7100 batch
//
// `batch` reads one operation per stdin line (put <key> <value> |
// get <key> | del <key>) and pipelines them all into a single OpEnvelope.
//
// Exit codes: 0 success, 1 usage/config error, 2 request failed (timeout,
// or a get answered with an authoritative "deleted" tombstone).
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "client/load_balancer.hpp"
#include "client/session.hpp"
#include "common/logging.hpp"
#include "core/messages.hpp"
#include "net/stream/dual_transport.hpp"
#include "net/stream/stream_transport.hpp"
#include "net/udp_transport.hpp"
#include "runtime/real_time_runtime.hpp"
#include "server/config.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: dataflasks_cli --peer ID@HOST:PORT [--peer ...]\n"
               "         [--timeout-ms N] [--version N] [--seed N]\n"
               "         [--ttl-ms N] [--log-level LEVEL]\n"
               "         put <key> <value> | get <key> | del <key> |\n"
               "         cas <key> <expected-version> <value> | stats | "
               "batch\n"
               "       batch reads stdin lines: put <key> <value> | "
               "get <key> | del <key>\n"
               "       stats prints the contact node's metrics snapshot "
               "(Prometheus text)\n"
               "       --ttl-ms N expires a put cluster-wide N ms after it "
               "is stored\n");
  return 1;
}

dataflasks::Payload payload_of(const std::string& text) {
  return dataflasks::Payload(dataflasks::ByteView(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dataflasks;

  std::vector<server::PeerSpec> peers;
  std::int64_t timeout_ms = 2000;
  std::uint32_t ttl_ms = 0;
  Version version = 1;
  bool version_given = false;
  std::uint64_t seed = 0;
  std::vector<std::string> positional;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--peer") {
      const char* value = next();
      server::PeerSpec peer;
      if (value == nullptr || !server::parse_peer_spec(value, peer)) {
        std::fprintf(stderr, "dataflasks_cli: bad --peer spec\n");
        return usage();
      }
      peers.push_back(peer);
    } else if (arg == "--timeout-ms") {
      const char* value = next();
      if (value == nullptr || (timeout_ms = std::atoll(value)) <= 0) {
        return usage();
      }
    } else if (arg == "--ttl-ms") {
      const char* value = next();
      if (value == nullptr) return usage();
      ttl_ms = static_cast<std::uint32_t>(std::strtoull(value, nullptr, 10));
    } else if (arg == "--version") {
      const char* value = next();
      if (value == nullptr) return usage();
      version = static_cast<Version>(std::strtoull(value, nullptr, 10));
      version_given = true;
    } else if (arg == "--seed") {
      const char* value = next();
      if (value == nullptr) return usage();
      seed = std::strtoull(value, nullptr, 10);
    } else if (arg == "--log-level") {
      const char* value = next();
      const auto level =
          value != nullptr ? log_level_from_string(value) : std::nullopt;
      if (!level) {
        std::fprintf(stderr, "dataflasks_cli: bad --log-level\n");
        return usage();
      }
      set_global_log_level(*level);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "dataflasks_cli: unknown flag %s\n", arg.c_str());
      return usage();
    } else {
      positional.push_back(arg);
    }
  }

  if (peers.empty() || positional.empty()) return usage();
  const std::string& command = positional[0];
  const bool is_put = command == "put";
  const bool is_get = command == "get";
  const bool is_del = command == "del";
  const bool is_cas = command == "cas";
  const bool is_stats = command == "stats";
  const bool is_batch = command == "batch";
  if ((is_put && positional.size() != 3) ||
      ((is_get || is_del) && positional.size() != 2) ||
      (is_cas && positional.size() != 4) ||
      ((is_stats || is_batch) && positional.size() != 1) ||
      (!is_put && !is_get && !is_del && !is_cas && !is_stats && !is_batch)) {
    return usage();
  }

  // Ephemeral client identity: high bits tag "client", low bits the pid so
  // concurrent CLI invocations do not collide (replies are routed by the
  // learned source address of this process's socket either way).
  const std::uint64_t pid = static_cast<std::uint64_t>(::getpid());
  const NodeId client_id(0x00C11E0000000000ULL | pid);
  if (seed == 0) seed = 0xC11E5EEDULL ^ (pid << 16);

  runtime::RealTimeRuntime rt(seed);
  net::UdpTransport udp(rt, {});  // ephemeral local port
  // Dial-only stream leg: envelopes ride a TCP connection when the contact
  // advertises a stream port (big values need one — they exceed what a
  // datagram carries), and fall back to UDP transparently when it does not.
  net::StreamTransport stream(rt, {});
  net::DualTransport::Options dual_options;
  dual_options.prefer_stream = [](std::uint16_t type) {
    return type == core::kOpEnvelope;
  };
  net::DualTransport transport(rt, udp, &stream, std::move(dual_options));
  std::vector<NodeId> contact_ids;
  for (const server::PeerSpec& peer : peers) {
    udp.add_peer(NodeId(peer.id), peer.host, peer.port);
    contact_ids.emplace_back(peer.id);
    // Directed discovery: the probe answer carries the contact's advertised
    // endpoint, stream port included, so the first oversized envelope can
    // dial instead of being stuck UDP-only.
    udp.probe_peer(NodeId(peer.id));
  }

  client::RandomLoadBalancer balancer(contact_ids, rt.rng().fork(1));
  client::ClientOptions options;
  // Every attempt must fit inside the run window below, so the failure
  // callback always fires (and prints) before the deadline.
  options.max_attempts = 3;
  options.request_timeout =
      std::max<std::int64_t>(timeout_ms / options.max_attempts, 50) * kMillis;
  client::Client client(client_id, transport, rt, balancer,
                        rt.rng().fork(2), options);
  client::Session session(client);

  int exit_code = 2;
  bool completed = false;
  const auto finish = [&](int code) {
    exit_code = code;
    completed = true;
    rt.stop();
  };

  if (is_put) {
    // The Session sugar has no explicit-version + TTL form; the callback
    // core does (a zero TTL is exactly the plain put).
    client.put(positional[1], payload_of(positional[2]), version, ttl_ms,
               [&](const client::PutResult& result) {
                 if (result.ok) {
                   std::printf(
                       "OK put %s v%llu -> replica n%llu "
                       "(%u attempts, %.1f ms)\n",
                       result.key.c_str(),
                       static_cast<unsigned long long>(result.version),
                       static_cast<unsigned long long>(result.replica.value),
                       result.attempts,
                       result.latency / static_cast<double>(kMillis));
                   finish(0);
                 } else if (result.superseded) {
                   std::printf(
                       "REJECTED put %s v%llu (key deleted at a higher "
                       "version)\n",
                       result.key.c_str(),
                       static_cast<unsigned long long>(result.version));
                   finish(2);
                 } else if (result.unsupported) {
                   std::fprintf(stderr,
                                "UNSUPPORTED put %s (cluster protocol has "
                                "no TTL; retry without --ttl-ms)\n",
                                result.key.c_str());
                   finish(2);
                 } else {
                   std::fprintf(stderr, "FAILED put %s (%u attempts)\n",
                                result.key.c_str(), result.attempts);
                   finish(2);
                 }
               });
  } else if (is_get) {
    const std::string& key = positional[1];
    session.get(key).then([&](const client::GetResult& result) {
      if (result.ok) {
        const std::string text(result.object.value.begin(),
                               result.object.value.end());
        std::printf("OK get %s v%llu = %s (replica n%llu, %.1f ms)\n",
                    result.object.key.c_str(),
                    static_cast<unsigned long long>(result.object.version),
                    text.c_str(),
                    static_cast<unsigned long long>(result.replica.value),
                    result.latency / static_cast<double>(kMillis));
        finish(0);
      } else if (result.deleted) {
        // Authoritative tombstone answer — the key was deleted, and a
        // replica said so; this is not a timeout.
        std::printf("MISS get %s (deleted at v%llu)\n", key.c_str(),
                    static_cast<unsigned long long>(result.object.version));
        finish(2);
      } else {
        std::fprintf(stderr, "FAILED get %s (%u attempts)\n", key.c_str(),
                     result.attempts);
        finish(2);
      }
    });
  } else if (is_del) {
    // Deletes default to a version above any CLI put (CLI puts default to
    // v1); an explicit --version overrides for upper layers that manage
    // ordering — including deleting exactly version 1.
    const Version del_version = version_given ? version : Version{1} << 32;
    session.del(positional[1], del_version)
        .then([&](const client::DelResult& result) {
          if (result.ok) {
            std::printf("OK del %s v%llu -> replica n%llu "
                        "(%u attempts, %.1f ms)\n",
                        result.key.c_str(),
                        static_cast<unsigned long long>(result.version),
                        static_cast<unsigned long long>(result.replica.value),
                        result.attempts,
                        result.latency / static_cast<double>(kMillis));
            finish(0);
          } else {
            std::fprintf(stderr, "FAILED del %s (%u attempts)\n",
                         result.key.c_str(), result.attempts);
            finish(2);
          }
        });
  } else if (is_cas) {
    const Version expected =
        static_cast<Version>(std::strtoull(positional[2].c_str(), nullptr, 10));
    session.cas(positional[1], expected, payload_of(positional[3]))
        .then([&](const client::CasResult& result) {
          if (result.ok) {
            std::printf("OK cas %s v%llu -> replica n%llu "
                        "(%u attempts, %.1f ms)\n",
                        result.key.c_str(),
                        static_cast<unsigned long long>(result.version),
                        static_cast<unsigned long long>(result.replica.value),
                        result.attempts,
                        result.latency / static_cast<double>(kMillis));
            finish(0);
          } else if (result.cas_failed) {
            std::printf("CONFLICT cas %s (current version is v%llu)\n",
                        result.key.c_str(),
                        static_cast<unsigned long long>(result.version));
            finish(2);
          } else if (result.unsupported) {
            std::fprintf(stderr,
                         "UNSUPPORTED cas %s (cluster speaks protocol v1)\n",
                         result.key.c_str());
            finish(2);
          } else {
            std::fprintf(stderr, "FAILED cas %s (%u attempts)\n",
                         result.key.c_str(), result.attempts);
            finish(2);
          }
        });
  } else if (is_stats) {
    session.stats().then([&](const client::StatsResult& result) {
      if (result.ok) {
        // The snapshot is the deliverable: print it verbatim (already
        // newline-terminated Prometheus text).
        std::fputs(result.text.c_str(), stdout);
        std::printf("# stats from replica n%llu (%u attempts, %.1f ms)\n",
                    static_cast<unsigned long long>(result.replica.value),
                    result.attempts,
                    result.latency / static_cast<double>(kMillis));
        finish(0);
      } else if (result.unsupported) {
        std::fprintf(stderr,
                     "UNSUPPORTED stats (cluster speaks protocol v1)\n");
        finish(2);
      } else {
        std::fprintf(stderr, "FAILED stats (%u attempts)\n", result.attempts);
        finish(2);
      }
    });
  } else {  // batch
    std::vector<core::Operation> ops;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(std::cin, line)) {
      ++line_no;
      std::istringstream in(line);
      std::string op, key;
      if (!(in >> op)) continue;  // blank line
      if (!(in >> key)) {
        std::fprintf(stderr, "dataflasks_cli: batch line %zu: missing key\n",
                     line_no);
        return 1;
      }
      if (op == "put") {
        std::string value;
        std::getline(in >> std::ws, value);
        ops.push_back(core::Operation::put(key, client.stamp_version(key),
                                           payload_of(value)));
      } else if (op == "get") {
        ops.push_back(core::Operation::get(key));
      } else if (op == "del") {
        ops.push_back(
            core::Operation::del(key, client.stamp_version(key)));
      } else {
        std::fprintf(stderr, "dataflasks_cli: batch line %zu: unknown op "
                     "'%s'\n", line_no, op.c_str());
        return 1;
      }
    }
    if (ops.empty()) {
      std::fprintf(stderr, "dataflasks_cli: batch: no operations on stdin\n");
      return 1;
    }
    session.execute(std::move(ops))
        .then([&](const std::vector<client::OpResult>& results) {
          int code = 0;
          for (const client::OpResult& r : results) {
            const char* op = r.type == core::OpType::kPut   ? "put"
                             : r.type == core::OpType::kGet ? "get"
                                                            : "del";
            if (r.ok) {
              if (r.type == core::OpType::kGet) {
                const std::string text(r.object.value.begin(),
                                       r.object.value.end());
                std::printf("OK get %s v%llu = %s\n", r.key.c_str(),
                            static_cast<unsigned long long>(
                                r.object.version),
                            text.c_str());
              } else {
                std::printf("OK %s %s v%llu\n", op, r.key.c_str(),
                            static_cast<unsigned long long>(r.version));
              }
            } else if (r.deleted) {
              std::printf("MISS get %s (deleted)\n", r.key.c_str());
              code = 2;
            } else if (r.superseded) {
              std::printf("REJECTED put %s (key deleted at a higher "
                          "version)\n", r.key.c_str());
              code = 2;
            } else {
              std::printf("FAILED %s %s (%u attempts)\n", op, r.key.c_str(),
                          r.attempts);
              code = 2;
            }
          }
          // Real datagram count: batches over the per-datagram budget are
          // split by the client, so this can legitimately exceed 1.
          const std::uint64_t envelopes =
              client.metrics().counter_value("client.envelopes_sent");
          std::printf("batch: %zu ops, %llu envelope%s\n", results.size(),
                      static_cast<unsigned long long>(envelopes),
                      envelopes == 1 ? "" : "s");
          finish(code);
        });
  }

  // Headroom beyond the final attempt's timeout, so the failure callback
  // (not this deadline) is what normally ends an unsuccessful run.
  rt.run_for((timeout_ms + 500) * kMillis);
  if (!completed) {
    // A get of an absent key sits on timeouts until the retry budget runs
    // out; report a conclusive timeout explicitly.
    std::fprintf(stderr, "TIMEOUT %s (no conclusive reply)\n",
                 command.c_str());
  }
  const std::uint64_t delivered =
      udp.total_delivered() +
      stream.counters().io.frames_in.load(std::memory_order_relaxed);
  if (exit_code != 0 && delivered == 0) {
    std::fprintf(stderr,
                 "dataflasks_cli: no replies received — is the cluster up?\n");
  }
  return exit_code;
}
