// Configuration for standalone DataFlasks processes (dataflasks_server and
// dataflasks_cli): a small key=value config-file format plus CLI flags that
// override it. Kept dependency-free (no JSON/TOML library in the container)
// and shared by both binaries and the tests.
//
// Config file grammar — one entry per line, '#' starts a comment:
//   id        = 0
//   listen    = 127.0.0.1:7100
//   advertise = 10.0.0.5                  # host gossiped to peers; required
//                                         # for healing when listen=0.0.0.0
//   peer      = 1@127.0.0.1:7101          # repeatable; DNS names allowed
//   seed      = 127.0.0.1:7100            # join contact (repeatable): the
//                                         # node id there is discovered by
//                                         # probing, everything else is
//                                         # gossip-learned
//   capacity  = 1.5
//   seed      = 42                        # a bare integer is the RNG seed
//   slices    = 1
//   gossip_ms = 200
//   ae_ms     = 1000
//   store     = memory                    # or: durable (snapshot+journal
//                                         # engine), log (legacy full-replay
//                                         # append-only log)
//   data_dir  = .                         # durable store directory
//   compact_interval_sec = 300            # periodic checkpoint/compaction
//                                         # (0 = off)
//   max_store_bytes = 0                   # cache mode: evict cold keys
//                                         # above this budget (0 = off)
//   reap_ms   = 1000                      # TTL expiry / eviction cadence
//   metrics_port = 9100                   # Prometheus TCP endpoint on the
//                                         # listen host (0 = ephemeral;
//                                         # omit to disable)
//   stream_port = 7200                    # TCP stream listener for big
//                                         # values / client envelopes (0 =
//                                         # ephemeral; omit for UDP-only)
//   log_level = info                      # trace|debug|info|warn|error|off
//   max_inflight_ops = 4096               # admission control: estimated
//                                         # in-flight op ceiling (0 turns
//                                         # admission/shedding off)
//   shed_queue_high = 4096                # runtime queue depth entering
//   shed_queue_low  = 1024                # ... and leaving overload
//   shed_lag_high_ms = 100                # event-loop lag entering
//   shed_lag_low_ms  = 20                 # ... and leaving overload
//   shed_trickle_per_sec = 200            # maintenance msgs still admitted
//                                         # per second while overloaded
//   shards = 4                            # shared-nothing runtime shards
//                                         # (0 = one per hardware thread)
//
// Equivalent CLI flags: --config <file>, --id N, --listen host:port,
// --advertise host, --peer id@host:port (repeatable), --seed host:port
// (repeatable join contact) or --seed N (bare integer: RNG seed),
// --capacity X, --slices K, --gossip-ms N, --ae-ms N,
// --store memory|durable|log, --data-dir DIR, --compact-interval-sec N,
// --max-store-bytes N, --reap-ms N, --metrics-port N, --stream-port N,
// --log-level LEVEL, --max-inflight-ops N, --shed-queue-high N,
// --shed-queue-low N, --shed-lag-high-ms N, --shed-lag-low-ms N,
// --shed-trickle-per-sec N, --shards N.
//
// Hosts in listen/peer may be DNS names; resolution (getaddrinfo) happens
// when the UDP transport binds/maps the address, not at parse time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "core/node.hpp"

namespace dataflasks::server {

struct PeerSpec {
  std::uint64_t id = 0;
  std::string host;
  std::uint16_t port = 0;
};

/// A join contact known only by address: the node id living there is
/// discovered with a transport probe at boot, and every other peer is then
/// learned through gossip — one seed bootstraps a whole cluster membership.
struct SeedSpec {
  std::string host;
  std::uint16_t port = 0;
};

enum class StoreKind : std::uint8_t {
  kMemory,   ///< volatile MemStore: a crash loses local data
  /// Snapshot + journal-tail StorageEngine under data_dir: restart loads
  /// the newest checkpoint and replays only the journal tail.
  kDurable,
  /// Legacy append-only LogStore (full-history replay at boot). Kept as an
  /// explicit choice so recovery benchmarks can compare against it.
  kLog,
};

struct ServerConfig {
  std::uint64_t id = 0;
  std::string listen_host = "127.0.0.1";
  std::uint16_t listen_port = 7100;
  /// Host gossiped to peers in self-descriptors and adverts. Empty uses
  /// listen_host; binding 0.0.0.0 without an advertise host gossips no
  /// endpoint at all (addresses then cannot heal — set this for
  /// multi-machine deployments).
  std::string advertise_host;
  std::vector<PeerSpec> peers;
  /// Seed-only join contacts (`--seed host:port`); may be combined with
  /// static peers or replace them entirely.
  std::vector<SeedSpec> seeds;
  double capacity = 1.0;
  /// 0 derives a per-node seed from `id` so restarted processes do not
  /// replay each other's gossip.
  std::uint64_t seed = 0;
  std::uint32_t slices = 1;
  /// Gossip cadence (PSS, slicing, adverts) in wall milliseconds.
  std::int64_t gossip_ms = 200;
  /// Anti-entropy cadence in wall milliseconds.
  std::int64_t ae_ms = 1000;
  /// Data Store backing the node (ROADMAP "durable-store flag").
  StoreKind store = StoreKind::kMemory;
  /// Directory for the durable store's log file (dataflasks-<id>.log).
  std::string data_dir = ".";
  /// Plain-TCP Prometheus endpoint port on listen_host: -1 disables (the
  /// default), 0 binds an ephemeral port (printed at boot), otherwise the
  /// given port. Config key `metrics_port` / flag `--metrics-port`.
  std::int32_t metrics_port = -1;
  /// Length-prefixed TCP stream listener port on listen_host: -1 disables
  /// streams (the node is UDP-only and peers never dial it), 0 binds an
  /// ephemeral port (printed before the ready line), otherwise the given
  /// port. The resolved port is stamped into the gossiped endpoint. Config
  /// key `stream_port` / flag `--stream-port`.
  std::int32_t stream_port = -1;
  /// Minimum log level for the process ("info" unless overridden).
  std::string log_level = "info";

  /// Admission control / load shedding (core/admission_controller.hpp).
  /// Unlike the simulator fixtures, a real server defends itself by
  /// default; `max_inflight_ops = 0` turns admission off entirely.
  std::uint64_t max_inflight_ops = 4096;
  /// Runtime queue-depth watermarks: depth above high enters overload,
  /// and overload only clears once depth falls back under low.
  std::uint64_t shed_queue_high = 4096;
  std::uint64_t shed_queue_low = 1024;
  /// Event-loop lag watermarks (wall milliseconds): the admission tick
  /// measures how late it fired — the honest symptom of a saturated
  /// single-threaded poll loop.
  std::int64_t shed_lag_high_ms = 100;
  std::int64_t shed_lag_low_ms = 20;
  /// Maintenance traffic (gossip/anti-entropy) admitted per second while
  /// overloaded, so membership and repair never starve.
  std::uint64_t shed_trickle_per_sec = 200;

  /// Periodic storage compaction interval in seconds (checkpoint for the
  /// durable StorageEngine, file rewrite for the legacy log store). 0
  /// disables. Config key `compact_interval_sec` / flag
  /// `--compact-interval-sec`.
  std::uint64_t compact_interval_sec = 0;
  /// Soft cap on live store bytes (cache mode): the expiry/eviction reaper
  /// evicts cold keys down to this budget. 0 = unbounded. Config key
  /// `max_store_bytes` / flag `--max-store-bytes`.
  std::uint64_t max_store_bytes = 0;
  /// TTL expiry / eviction reap cadence in wall milliseconds (0 disables
  /// the reaper). Config key `reap_ms` / flag `--reap-ms`.
  std::int64_t reap_ms = 1000;

  /// Shared-nothing shard count: N runtime shards, each on its own thread
  /// with its own SO_REUSEPORT socket (see server/shard_group.hpp). 0 =
  /// auto (one shard per hardware thread, capped at 16); 1 = the classic
  /// single-runtime server. Config key `shards` / flag `--shards`.
  std::uint32_t shards = 0;

  /// `shards` with 0 resolved to the hardware concurrency (clamped 1-16).
  [[nodiscard]] std::size_t resolved_shards() const;

  /// NodeOptions with every periodic cadence scaled to this config's
  /// real-clock periods.
  [[nodiscard]] core::NodeOptions node_options() const;

  [[nodiscard]] std::vector<NodeId> peer_ids() const;

  /// Path of the durable store's log file for this node id.
  [[nodiscard]] std::string store_path() const;

  /// Base path (no extension) for the StorageEngine's snapshot/journal
  /// generations for this node id.
  [[nodiscard]] std::string store_base_path() const;
};

/// Parses "host:port". Returns false on malformed input.
bool parse_host_port(const std::string& text, std::string& host,
                     std::uint16_t& port);

/// Parses "id@host:port".
bool parse_peer_spec(const std::string& text, PeerSpec& out);

/// Applies one config-file's entries on top of `config`.
[[nodiscard]] Result<ServerConfig> load_config_file(const std::string& path,
                                                    ServerConfig config);

/// Parses the full command line (including any --config file, applied
/// first so flags override it). `args` excludes argv[0]. Unknown flags are
/// an error; positional arguments are returned untouched in `positional`.
[[nodiscard]] Result<ServerConfig> parse_server_args(
    const std::vector<std::string>& args,
    std::vector<std::string>* positional = nullptr);

}  // namespace dataflasks::server
