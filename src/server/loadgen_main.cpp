// dataflasks_loadgen: multi-threaded load harness for a REAL DataFlasks
// cluster — YCSB-style workloads driven through the client library over
// UDP, with per-phase latency histograms and a machine-readable JSON
// report. This measures the deployment stack end to end (client batching,
// real datagrams, epidemic routing, replica stores), where bench_*.cpp
// measures protocol behavior under the simulator's virtual clock.
//
//   $ dataflasks_loadgen --peer 0@127.0.0.1:7100 --peer 1@127.0.0.1:7101
//       --workload A --threads 4 --concurrency 4 --duration-ms 20000
//       --out BENCH_real_cluster.json
//
// Share-nothing workers: each thread owns a runtime, a UDP socket, a
// client and a workload generator, so workers never contend on anything —
// their histograms are merged bucket-wise after join. Closed loop by
// default (`concurrency` self-reissuing batch streams per worker); --rate
// switches to an open loop issuing at a fixed aggregate rate and counting
// shed batches instead of queueing into the client unboundedly.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/client.hpp"
#include "client/load_balancer.hpp"
#include "client/session.hpp"
#include "core/messages.hpp"
#include "net/stream/dual_transport.hpp"
#include "net/stream/stream_transport.hpp"
#include "net/udp_transport.hpp"
#include "obs/metrics.hpp"
#include "runtime/real_time_runtime.hpp"
#include "server/config.hpp"
#include "workload/ycsb.hpp"

namespace {

using namespace dataflasks;

int usage() {
  std::fprintf(
      stderr,
      "usage: dataflasks_loadgen --peer ID@HOST:PORT [--peer ...]\n"
      "         [--workload A|B|C|D|F|write-only|delete-heavy]\n"
      "         [--threads N] [--concurrency N] [--batch N] [--records N]\n"
      "         [--value-bytes N | --value-size N] [--duration-ms N]\n"
      "         [--rate OPS_PER_SEC]\n"
      "         [--timeout-ms N] [--deadline-ms N] [--ttl-ms N]\n"
      "         [--slices K] [--seed N]\n"
      "         [--skip-load] [--sweep R1,R2,...] [--print-server-stats]\n"
      "         [--out FILE]\n"
      "closed loop (default): `concurrency` batch streams per thread, each\n"
      "reissuing on completion; --rate switches to an open loop at a fixed\n"
      "aggregate issue rate (shed batches are reported, not queued).\n"
      "--deadline-ms sets an absolute per-request budget (ops fail\n"
      "definitively as deadline_exceeded past it). --sweep runs one open\n"
      "loop per offered rate (duration-ms each, one shared load phase) and\n"
      "reports goodput per step plus the throughput knee.\n"
      "--value-size (alias of --value-bytes) may exceed the UDP datagram\n"
      "budget: such values travel over the stream transport, so the\n"
      "contacted servers must run with --stream-port.\n"
      "--ttl-ms puts run-phase writes with a TTL (cache mode: keys expire\n"
      "cluster-wide); the load phase stays plain so records outlive it.\n");
  return 1;
}

struct LoadgenConfig {
  std::vector<server::PeerSpec> peers;
  std::string workload = "A";
  std::size_t threads = 2;
  std::size_t concurrency = 4;  ///< closed-loop streams per worker
  std::size_t batch = 8;        ///< ops per request envelope
  std::size_t records = 1000;
  std::size_t value_bytes = 100;
  std::int64_t duration_ms = 10000;
  double rate = 0.0;  ///< aggregate ops/sec; 0 = closed loop
  std::int64_t timeout_ms = 1000;
  /// Absolute per-request budget (client op_deadline); 0 = none.
  std::int64_t deadline_ms = 0;
  /// TTL stamped on run-phase writes (cache mode); 0 = plain puts.
  std::uint32_t ttl_ms = 0;
  /// Offered-load sweep: one open-loop run per rate, knee reported.
  std::vector<double> sweep;
  std::uint32_t slices = 0;  ///< slice-aware balancing hint (0 = off)
  std::uint64_t seed = 0;
  bool skip_load = false;
  bool print_server_stats = false;
  std::string out;  ///< report path; empty = stdout
};

/// One worker's share of the measurements. Histograms record microseconds
/// of client-observed end-to-end latency (failed ops excluded); failures
/// count ops that exhausted the retry budget or were definitively
/// rejected (superseded / CAS conflict).
struct WorkerStats {
  obs::LatencyHistogram load_us;
  obs::LatencyHistogram op_us;
  obs::LatencyHistogram read_us;
  obs::LatencyHistogram write_us;
  std::uint64_t load_ok = 0;
  std::uint64_t load_failed = 0;
  std::uint64_t ops_ok = 0;
  std::uint64_t ops_failed = 0;
  std::uint64_t batches = 0;
  std::uint64_t shed_ops = 0;  ///< open loop only: dropped at issue time
  /// Run-phase failure breakdown: explicit server backpressure vs. the
  /// per-request deadline expiring (both subsets of ops_failed).
  std::uint64_t ops_overloaded = 0;
  std::uint64_t ops_deadline = 0;

  void merge_from(const WorkerStats& other) {
    load_us.merge_from(other.load_us);
    op_us.merge_from(other.op_us);
    read_us.merge_from(other.read_us);
    write_us.merge_from(other.write_us);
    load_ok += other.load_ok;
    load_failed += other.load_failed;
    ops_ok += other.ops_ok;
    ops_failed += other.ops_failed;
    batches += other.batches;
    shed_ops += other.shed_ops;
    ops_overloaded += other.ops_overloaded;
    ops_deadline += other.ops_deadline;
  }
};

std::optional<workload::WorkloadSpec> spec_for(const std::string& name) {
  if (name == "A") return workload::WorkloadSpec::A();
  if (name == "B") return workload::WorkloadSpec::B();
  if (name == "C") return workload::WorkloadSpec::C();
  if (name == "D") return workload::WorkloadSpec::D();
  if (name == "F") return workload::WorkloadSpec::F();
  if (name == "write-only") return workload::WorkloadSpec::write_only();
  if (name == "delete-heavy") return workload::WorkloadSpec::delete_heavy();
  return std::nullopt;
}

/// Expands one workload op into client operations. Read-modify-write is a
/// get + put of the same key riding the same envelope (one round-trip).
void append_ops(std::vector<core::Operation>& out, const workload::Op& op,
                client::Client& client, const Payload& value,
                std::uint32_t ttl_ms) {
  switch (op.kind) {
    case workload::OpKind::kRead:
      out.push_back(core::Operation::get(op.key));
      break;
    case workload::OpKind::kUpdate:
    case workload::OpKind::kInsert:
      out.push_back(core::Operation::put(
          op.key, client.stamp_version(op.key), value, ttl_ms));
      break;
    case workload::OpKind::kReadModifyWrite:
      out.push_back(core::Operation::get(op.key));
      out.push_back(core::Operation::put(
          op.key, client.stamp_version(op.key), value, ttl_ms));
      break;
    case workload::OpKind::kDelete:
      out.push_back(
          core::Operation::del(op.key, client.stamp_version(op.key)));
      break;
  }
}

void record_results(const std::vector<client::OpResult>& results,
                    obs::LatencyHistogram& phase_us, WorkerStats& stats,
                    std::uint64_t& ok, std::uint64_t& failed, bool classify) {
  for (const client::OpResult& r : results) {
    // An authoritative "deleted" answer is a served read (the cluster
    // resolved the key to a tombstone), not a failure of the harness.
    if (r.ok || r.deleted) {
      ++ok;
      const auto us = static_cast<std::uint64_t>(r.latency > 0 ? r.latency : 0);
      phase_us.record(us);
      if (classify) {
        if (r.type == core::OpType::kGet) {
          stats.read_us.record(us);
        } else {
          stats.write_us.record(us);
        }
      }
    } else {
      ++failed;
      if (classify) {
        if (r.overloaded) ++stats.ops_overloaded;
        if (r.deadline_exceeded) ++stats.ops_deadline;
      }
    }
  }
}

/// One worker: own runtime, socket, client and generator; closed or open
/// loop until the phase deadline, then a clean stop once nothing is in
/// flight.
void run_worker(std::size_t index, const LoadgenConfig& config,
                std::uint64_t seed, WorkerStats& stats,
                std::size_t id_salt) {
  runtime::RealTimeRuntime rt(seed);
  net::UdpTransport udp(rt, {});  // ephemeral local port
  // Dial-only stream leg: required when --value-size exceeds the datagram
  // budget, transparent UDP fallback against stream-less servers otherwise.
  net::StreamTransport stream(rt, {});
  net::DualTransport::Options dual_options;
  dual_options.prefer_stream = [](std::uint16_t type) {
    return type == core::kOpEnvelope;
  };
  net::DualTransport transport(rt, udp, &stream, std::move(dual_options));
  std::vector<NodeId> contacts;
  for (const server::PeerSpec& peer : config.peers) {
    udp.add_peer(NodeId(peer.id), peer.host, peer.port);
    contacts.emplace_back(peer.id);
    udp.probe_peer(NodeId(peer.id));  // learns the contact's stream port
  }

  // Client identity: loadgen tag | pid byte | worker index, so concurrent
  // loadgen processes and their workers all stamp disjoint versions (the
  // id's low 24 bits salt every stamped version).
  const auto pid = static_cast<std::uint64_t>(::getpid());
  const NodeId client_id(0x10AD000000000000ULL | ((pid & 0xFF) << 16) |
                         ((index + id_salt) & 0xFFFF));
  client::RandomLoadBalancer balancer(contacts, rt.rng().fork(1));
  client::ClientOptions options;
  options.request_timeout = config.timeout_ms * kMillis;
  options.max_attempts = 3;
  options.slice_count_hint = config.slices;
  options.op_deadline =
      config.deadline_ms > 0 ? config.deadline_ms * kMillis : 0;
  client::Client client(client_id, transport, rt, balancer, rt.rng().fork(2),
                        options);

  workload::WorkloadSpec spec = *spec_for(config.workload);
  spec.record_count = config.records;
  spec.value_size = config.value_bytes;
  workload::WorkloadGenerator generator(spec, rt.rng().fork(3 + index));
  const Payload value{Bytes(config.value_bytes, 0xDF)};

  // ---- load phase: this worker's modulo share of the records ----
  if (!config.skip_load && config.records > 0) {
    std::vector<core::Operation> to_load;
    const std::vector<workload::Op> all = generator.load_phase();
    for (std::size_t i = index; i < all.size(); i += config.threads) {
      to_load.push_back(core::Operation::put(
          all[i].key, client.stamp_version(all[i].key), value));
    }
    std::size_t cursor = 0;
    std::size_t active = 0;
    std::function<void()> issue = [&]() {
      if (cursor >= to_load.size()) {
        if (active == 0) rt.stop();
        return;
      }
      const std::size_t n = std::min(config.batch, to_load.size() - cursor);
      std::vector<core::Operation> chunk(
          to_load.begin() + static_cast<std::ptrdiff_t>(cursor),
          to_load.begin() + static_cast<std::ptrdiff_t>(cursor + n));
      cursor += n;
      ++active;
      client.execute(std::move(chunk),
                     [&](const std::vector<client::OpResult>& results) {
                       --active;
                       record_results(results, stats.load_us, stats,
                                      stats.load_ok, stats.load_failed,
                                      /*classify=*/false);
                       issue();
                     });
    };
    const std::size_t streams = std::max<std::size_t>(config.concurrency, 1);
    for (std::size_t s = 0; s < streams && cursor < to_load.size(); ++s) {
      issue();
    }
    if (active > 0) rt.run();
  }

  // ---- run phase ----
  const SimTime deadline = rt.now() + config.duration_ms * kMillis;

  auto make_batch = [&]() {
    std::vector<core::Operation> ops;
    ops.reserve(config.batch + 1);  // RMW may push one op past the target
    while (ops.size() < config.batch) {
      append_ops(ops, generator.next(), client, value, config.ttl_ms);
    }
    return ops;
  };
  auto on_done = [&](const std::vector<client::OpResult>& results) {
    ++stats.batches;
    record_results(results, stats.op_us, stats, stats.ops_ok,
                   stats.ops_failed, /*classify=*/true);
  };

  if (config.rate <= 0.0) {
    // Closed loop: each stream reissues on completion until the deadline.
    std::size_t active = std::max<std::size_t>(config.concurrency, 1);
    std::function<void()> issue = [&]() {
      if (rt.now() >= deadline) {
        if (--active == 0) rt.stop();
        return;
      }
      client.execute(make_batch(),
                     [&](const std::vector<client::OpResult>& results) {
                       on_done(results);
                       issue();
                     });
    };
    for (std::size_t s = 0; s < active; ++s) {
      // Stagger first issues so the streams do not phase-lock.
      rt.schedule_after(static_cast<SimTime>(s) * kMillis, issue);
    }
    rt.run();
  } else {
    // Open loop: issue one batch per tick at a fixed per-worker rate; an
    // overloaded cluster sheds batches at issue time (reported) instead of
    // stacking latency into an unbounded client queue.
    const double worker_rate = config.rate / static_cast<double>(config.threads);
    const auto period = std::max<SimTime>(
        static_cast<SimTime>(static_cast<double>(config.batch) * 1e6 /
                             worker_rate),
        1);
    const std::size_t inflight_cap =
        std::max<std::size_t>(config.concurrency, 1) * 4;
    std::size_t active = 0;
    std::function<void()> tick = [&]() {
      if (rt.now() >= deadline) {
        if (active == 0) rt.stop();
        return;  // else: the last completion below stops the loop
      }
      if (active >= inflight_cap) {
        stats.shed_ops += config.batch;
      } else {
        ++active;
        client.execute(make_batch(),
                       [&](const std::vector<client::OpResult>& results) {
                         --active;
                         on_done(results);
                         if (rt.now() >= deadline && active == 0) rt.stop();
                       });
      }
      rt.schedule_after(period, tick);
    };
    rt.schedule_after(period, tick);
    // Backstop: every in-flight batch resolves within the retry budget, so
    // bound the post-deadline drain instead of trusting it.
    rt.schedule_after(
        config.duration_ms * kMillis + 3 * config.timeout_ms * kMillis +
            kSeconds,
        [&]() { rt.stop(); });
    rt.run();
  }
}

/// Spawns the share-nothing worker fleet for one run and merges their
/// measurements. `id_salt` keeps client ids (and thus stamped versions)
/// disjoint across sweep steps.
std::unique_ptr<WorkerStats> run_fleet(const LoadgenConfig& config,
                                       std::size_t id_salt) {
  std::vector<std::unique_ptr<WorkerStats>> stats;
  for (std::size_t w = 0; w < config.threads; ++w) {
    stats.push_back(std::make_unique<WorkerStats>());
  }
  std::vector<std::thread> workers;
  workers.reserve(config.threads);
  for (std::size_t w = 0; w < config.threads; ++w) {
    workers.emplace_back(run_worker, w, std::cref(config),
                         config.seed + 0x9E37 * (w + 1 + id_salt),
                         std::ref(*stats[w]), id_salt);
  }
  for (std::thread& worker : workers) worker.join();
  // WorkerStats holds atomic histogram buckets and cannot be moved, so the
  // merged total travels behind a pointer.
  auto total = std::make_unique<WorkerStats>();
  for (const auto& s : stats) total->merge_from(*s);
  return total;
}

/// One offered-load step of a --sweep run.
struct SweepStep {
  double offered = 0.0;   ///< target aggregate ops/sec
  double goodput = 0.0;   ///< ops_ok / run seconds
  std::unique_ptr<WorkerStats> stats;  ///< immovable member, held by pointer
};

void write_quantiles(std::FILE* out, const obs::LatencyHistogram& h) {
  std::fprintf(out,
               "{\"p50\": %llu, \"p90\": %llu, \"p99\": %llu, "
               "\"p999\": %llu, \"max\": %llu, \"mean\": %.1f}",
               static_cast<unsigned long long>(h.quantile(0.50)),
               static_cast<unsigned long long>(h.quantile(0.90)),
               static_cast<unsigned long long>(h.quantile(0.99)),
               static_cast<unsigned long long>(h.quantile(0.999)),
               static_cast<unsigned long long>(h.max()), h.mean());
}

/// One Stats op against a random contact after the run, so the server-side
/// view (op counters, backlogs, store size) lands next to the client-side
/// numbers in the harness output.
void print_server_stats(const LoadgenConfig& config) {
  runtime::RealTimeRuntime rt(config.seed ^ 0x57A75);
  net::UdpTransport transport(rt, {});
  std::vector<NodeId> contacts;
  for (const server::PeerSpec& peer : config.peers) {
    transport.add_peer(NodeId(peer.id), peer.host, peer.port);
    contacts.emplace_back(peer.id);
  }
  const NodeId client_id(0x10AD570000000000ULL |
                         (static_cast<std::uint64_t>(::getpid()) & 0xFFFF));
  client::RandomLoadBalancer balancer(contacts, rt.rng().fork(1));
  client::ClientOptions options;
  options.request_timeout = config.timeout_ms * kMillis;
  client::Client client(client_id, transport, rt, balancer, rt.rng().fork(2),
                        options);
  client::Session session(client);
  session.stats().then([&](const client::StatsResult& result) {
    if (result.ok) {
      std::fprintf(stderr, "---- server stats (replica n%llu) ----\n%s",
                   static_cast<unsigned long long>(result.replica.value),
                   result.text.c_str());
    } else {
      std::fprintf(stderr, "dataflasks_loadgen: stats op failed\n");
    }
    rt.stop();
  });
  rt.run_for((config.timeout_ms * 3 + 500) * kMillis);
}

}  // namespace

int main(int argc, char** argv) {
  LoadgenConfig config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const auto next_u64 = [&](std::uint64_t& out) {
      const char* text = next();
      if (text == nullptr || *text == '\0') return false;
      char* end = nullptr;
      out = std::strtoull(text, &end, 10);
      return end != nullptr && *end == '\0';
    };
    std::uint64_t u64 = 0;
    if (arg == "--peer") {
      const char* text = next();
      server::PeerSpec peer;
      if (text == nullptr || !server::parse_peer_spec(text, peer)) {
        std::fprintf(stderr, "dataflasks_loadgen: bad --peer spec\n");
        return usage();
      }
      config.peers.push_back(peer);
    } else if (arg == "--workload") {
      const char* text = next();
      if (text == nullptr || !spec_for(text)) {
        std::fprintf(stderr, "dataflasks_loadgen: unknown workload\n");
        return usage();
      }
      config.workload = text;
    } else if (arg == "--threads") {
      if (!next_u64(u64) || u64 == 0 || u64 > 256) return usage();
      config.threads = u64;
    } else if (arg == "--concurrency") {
      if (!next_u64(u64) || u64 == 0) return usage();
      config.concurrency = u64;
    } else if (arg == "--batch") {
      if (!next_u64(u64) || u64 == 0) return usage();
      config.batch = u64;
    } else if (arg == "--records") {
      if (!next_u64(u64)) return usage();
      config.records = u64;
    } else if (arg == "--value-bytes" || arg == "--value-size") {
      if (!next_u64(u64) || u64 == 0) return usage();
      config.value_bytes = u64;
    } else if (arg == "--duration-ms") {
      if (!next_u64(u64) || u64 == 0) return usage();
      config.duration_ms = static_cast<std::int64_t>(u64);
    } else if (arg == "--rate") {
      if (!next_u64(u64)) return usage();
      config.rate = static_cast<double>(u64);
    } else if (arg == "--timeout-ms") {
      if (!next_u64(u64) || u64 == 0) return usage();
      config.timeout_ms = static_cast<std::int64_t>(u64);
    } else if (arg == "--deadline-ms") {
      if (!next_u64(u64) || u64 == 0) return usage();
      config.deadline_ms = static_cast<std::int64_t>(u64);
    } else if (arg == "--ttl-ms") {
      if (!next_u64(u64) || u64 == 0) return usage();
      config.ttl_ms = static_cast<std::uint32_t>(u64);
    } else if (arg == "--sweep") {
      const char* text = next();
      if (text == nullptr || *text == '\0') return usage();
      std::string list(text);
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const std::size_t comma = std::min(list.find(',', pos), list.size());
        const std::string token = list.substr(pos, comma - pos);
        char* end = nullptr;
        const double rate = std::strtod(token.c_str(), &end);
        if (rate <= 0.0 || end == nullptr || *end != '\0') {
          std::fprintf(stderr, "dataflasks_loadgen: bad --sweep rate\n");
          return usage();
        }
        config.sweep.push_back(rate);
        pos = comma + 1;
      }
    } else if (arg == "--slices") {
      if (!next_u64(u64)) return usage();
      config.slices = static_cast<std::uint32_t>(u64);
    } else if (arg == "--seed") {
      if (!next_u64(u64)) return usage();
      config.seed = u64;
    } else if (arg == "--skip-load") {
      config.skip_load = true;
    } else if (arg == "--print-server-stats") {
      config.print_server_stats = true;
    } else if (arg == "--out") {
      const char* text = next();
      if (text == nullptr) return usage();
      config.out = text;
    } else {
      std::fprintf(stderr, "dataflasks_loadgen: unknown flag %s\n",
                   arg.c_str());
      return usage();
    }
  }
  if (config.peers.empty()) return usage();
  if (config.seed == 0) {
    config.seed =
        0x10AD5EEDULL ^ (static_cast<std::uint64_t>(::getpid()) << 20);
  }

  std::fprintf(stderr,
               "dataflasks_loadgen: workload %s, %zu threads x %zu streams, "
               "batch %zu, %zu records, %lld ms%s\n",
               config.workload.c_str(), config.threads, config.concurrency,
               config.batch, config.records,
               static_cast<long long>(config.duration_ms),
               config.rate > 0 ? " (open loop)" : "");

  const auto wall_start = std::chrono::steady_clock::now();
  const double run_seconds = static_cast<double>(config.duration_ms) / 1000.0;

  // Merged share-nothing worker measurements (bucket-wise histogram
  // accumulation keeps the single-histogram quantile error bound). A sweep
  // aggregates every step into `total` and keeps the per-step breakdown.
  WorkerStats total;
  std::vector<SweepStep> sweep;
  if (config.sweep.empty()) {
    total.merge_from(*run_fleet(config, 0));
  } else {
    LoadgenConfig step_config = config;
    for (std::size_t s = 0; s < config.sweep.size(); ++s) {
      step_config.rate = config.sweep[s];
      // One shared load phase; each step's id_salt keeps its client ids —
      // and thus its stamped versions — disjoint from every other step's.
      step_config.skip_load = config.skip_load || s > 0;
      std::fprintf(stderr,
                   "dataflasks_loadgen: sweep step %zu/%zu, offering %.0f "
                   "ops/sec\n",
                   s + 1, config.sweep.size(), step_config.rate);
      SweepStep step;
      step.offered = step_config.rate;
      step.stats = run_fleet(step_config, (s + 1) * config.threads);
      step.goodput =
          run_seconds > 0
              ? static_cast<double>(step.stats->ops_ok) / run_seconds
              : 0;
      total.merge_from(*step.stats);
      sweep.push_back(std::move(step));
    }
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  const double measured_seconds =
      run_seconds * static_cast<double>(std::max<std::size_t>(
                        config.sweep.size(), 1));
  const double ops_per_sec =
      measured_seconds > 0
          ? static_cast<double>(total.ops_ok) / measured_seconds
          : 0;

  std::FILE* out = stdout;
  if (!config.out.empty()) {
    out = std::fopen(config.out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "dataflasks_loadgen: cannot write %s\n",
                   config.out.c_str());
      return 1;
    }
  }
  std::fprintf(out, "{\n  \"bench\": \"real_cluster\",\n");
  std::fprintf(out,
               "  \"config\": {\"workload\": \"%s\", \"peers\": %zu, "
               "\"threads\": %zu, \"concurrency\": %zu, \"batch\": %zu, "
               "\"records\": %zu, \"value_bytes\": %zu, "
               "\"duration_ms\": %lld, \"rate\": %.0f, "
               "\"timeout_ms\": %lld, \"deadline_ms\": %lld, "
               "\"ttl_ms\": %llu},\n",
               config.workload.c_str(), config.peers.size(), config.threads,
               config.concurrency, config.batch, config.records,
               config.value_bytes, static_cast<long long>(config.duration_ms),
               config.rate, static_cast<long long>(config.timeout_ms),
               static_cast<long long>(config.deadline_ms),
               static_cast<unsigned long long>(config.ttl_ms));
  std::fprintf(out,
               "  \"load_phase\": {\"ops\": %llu, \"failures\": %llu, "
               "\"latency_us\": ",
               static_cast<unsigned long long>(total.load_ok),
               static_cast<unsigned long long>(total.load_failed));
  write_quantiles(out, total.load_us);
  std::fprintf(out, "},\n");
  std::fprintf(out,
               "  \"run_phase\": {\"ops\": %llu, \"failures\": %llu, "
               "\"overloaded\": %llu, \"deadline_exceeded\": %llu, "
               "\"shed_ops\": %llu, \"batches\": %llu, \"seconds\": %.1f, "
               "\"ops_per_sec\": %.1f,\n    \"latency_us\": ",
               static_cast<unsigned long long>(total.ops_ok),
               static_cast<unsigned long long>(total.ops_failed),
               static_cast<unsigned long long>(total.ops_overloaded),
               static_cast<unsigned long long>(total.ops_deadline),
               static_cast<unsigned long long>(total.shed_ops),
               static_cast<unsigned long long>(total.batches),
               measured_seconds, ops_per_sec);
  write_quantiles(out, total.op_us);
  std::fprintf(out, ",\n    \"read_latency_us\": ");
  write_quantiles(out, total.read_us);
  std::fprintf(out, ",\n    \"write_latency_us\": ");
  write_quantiles(out, total.write_us);
  std::fprintf(out, "}");
  if (!sweep.empty()) {
    // Per-step goodput plus the throughput knee: the offered load where
    // goodput peaks — past it the server sheds instead of collapsing.
    std::size_t knee = 0;
    std::fprintf(out, ",\n  \"sweep\": [");
    for (std::size_t s = 0; s < sweep.size(); ++s) {
      if (sweep[s].goodput > sweep[knee].goodput) knee = s;
      const WorkerStats& st = *sweep[s].stats;
      std::fprintf(
          out,
          "%s\n    {\"offered\": %.0f, \"goodput\": %.1f, \"ops\": %llu, "
          "\"failures\": %llu, \"overloaded\": %llu, "
          "\"deadline_exceeded\": %llu, \"shed_ops\": %llu, "
          "\"p50_us\": %llu, \"p99_us\": %llu}",
          s > 0 ? "," : "", sweep[s].offered, sweep[s].goodput,
          static_cast<unsigned long long>(st.ops_ok),
          static_cast<unsigned long long>(st.ops_failed),
          static_cast<unsigned long long>(st.ops_overloaded),
          static_cast<unsigned long long>(st.ops_deadline),
          static_cast<unsigned long long>(st.shed_ops),
          static_cast<unsigned long long>(st.op_us.quantile(0.5)),
          static_cast<unsigned long long>(st.op_us.quantile(0.99)));
    }
    const WorkerStats& ks = *sweep[knee].stats;
    const double attempted = static_cast<double>(ks.ops_ok + ks.ops_failed +
                                                 ks.shed_ops);
    const double shed_fraction =
        attempted > 0
            ? static_cast<double>(ks.ops_overloaded + ks.shed_ops) / attempted
            : 0;
    std::fprintf(out,
                 "\n  ],\n  \"knee\": {\"offered\": %.0f, \"goodput\": %.1f, "
                 "\"p99_us\": %llu, \"shed_fraction\": %.4f}",
                 sweep[knee].offered, sweep[knee].goodput,
                 static_cast<unsigned long long>(ks.op_us.quantile(0.99)),
                 shed_fraction);
  }
  std::fprintf(out, ",\n  \"wall_seconds\": %.1f\n}\n", wall_seconds);
  if (out != stdout) std::fclose(out);

  std::fprintf(stderr,
               "dataflasks_loadgen: %llu ops ok, %llu failed "
               "(%llu overloaded, %llu deadline), %.1f ops/sec, "
               "p50 %llu us, p99 %llu us, p999 %llu us\n",
               static_cast<unsigned long long>(total.ops_ok),
               static_cast<unsigned long long>(total.ops_failed),
               static_cast<unsigned long long>(total.ops_overloaded),
               static_cast<unsigned long long>(total.ops_deadline),
               ops_per_sec,
               static_cast<unsigned long long>(total.op_us.quantile(0.5)),
               static_cast<unsigned long long>(total.op_us.quantile(0.99)),
               static_cast<unsigned long long>(total.op_us.quantile(0.999)));

  if (config.print_server_stats) print_server_stats(config);

  return total.ops_ok > 0 ? 0 : 2;
}
