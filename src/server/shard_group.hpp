// Shared-nothing multi-shard server runtime (thread-per-core model): one
// process hosts N shards, each with its OWN RealTimeRuntime on a dedicated
// thread, its own SO_REUSEPORT UDP socket on the shared listen port, its
// own admission controller and its own RNG stream. The kernel spreads
// inbound datagrams across the shard sockets by source-address hash, so
// ingress parallelizes without a dispatcher thread.
//
// Division of labor:
//   - Shard 0 runs the full core::Node — membership gossip, slicing,
//     anti-entropy, state transfer, handoff and the spray router all stay
//     single-threaded there, untouched.
//   - Every shard (0 included) runs a client-op EXECUTOR: operation
//     envelopes arriving on its socket are decoded and the ops for this
//     node's slice are executed against the shared ShardedStore, keyed by
//     ShardedStore::partition_of — ops owned by a sibling shard are mailed
//     to it, everything else (foreign slices, stats ops, protocol
//     mismatches, gossip, sprays) is forwarded to shard 0's Node.
//   - Cross-shard communication happens ONLY through the runtimes'
//     lock-free mailboxes (Runtime::post_from_any_thread); shards share no
//     mutable state besides the ShardedStore's internally-locked
//     partitions and this group's atomic counters.
//
// Executor semantics mirror RequestHandler::handle_ops_delivery at the
// contact: writes store locally + push immediate copies to slice-mates
// (addresses carried in a periodically published SliceSnapshot), served
// gets answer the client directly from the executing shard's socket, and
// unserved gets are mailed to shard 0 which re-sprays them into the slice
// (RequestHandler::spray_ops). With --shards 1 none of this engages: the
// group degenerates to exactly the classic single-runtime server.
#pragma once

#include <netinet/in.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "core/node.hpp"
#include "net/stream/dual_transport.hpp"
#include "net/stream/stream_transport.hpp"
#include "net/udp_transport.hpp"
#include "runtime/real_time_runtime.hpp"
#include "store/store.hpp"

namespace dataflasks::server {

struct ShardGroupOptions {
  NodeId id;
  double capacity = 1.0;
  /// Process seed; each shard's runtime forks a distinct stream from it.
  std::uint64_t seed = 1;
  /// Shard count (>= 1). 1 = classic single-runtime server, bit-for-bit.
  std::size_t shards = 1;
  /// Shard 0's transport options; workers derive theirs (same port,
  /// SO_REUSEPORT) from the bound result.
  net::UdpTransport::Options net;
  /// TCP stream listener port on the UDP bind address: -1 = no streams
  /// (UDP-only node), 0 = ephemeral, else the given port. The listener
  /// binds BEFORE shard 0's UDP transport so the gossiped endpoint carries
  /// the resolved port from the first self-descriptor. Stream ingress and
  /// egress live on shard 0; executor shards mail stream-bound replies to
  /// it (see execute_ops).
  std::int32_t stream_port = -1;
  core::NodeOptions node;
  /// Cadence at which shard 0 publishes slice identity + replica addresses
  /// to the executor shards.
  SimTime snapshot_period = 200 * kMillis;
};

/// Executor-side event counters, one set per shard. Written only on the
/// owning shard's thread; atomic so shard 0's metrics render can fold all
/// shards into the single-node counter names without synchronizing loops.
struct ShardExecCounters {
  std::atomic<std::uint64_t> puts_stored{0};
  std::atomic<std::uint64_t> puts_superseded{0};
  std::atomic<std::uint64_t> put_conflicts{0};
  std::atomic<std::uint64_t> deletes_stored{0};
  std::atomic<std::uint64_t> delete_conflicts{0};
  std::atomic<std::uint64_t> gets_served{0};
  std::atomic<std::uint64_t> gets_deleted{0};
  std::atomic<std::uint64_t> gets_missed{0};
  std::atomic<std::uint64_t> cas_stored{0};
  std::atomic<std::uint64_t> cas_failed{0};
  std::atomic<std::uint64_t> cas_conflicts{0};
  std::atomic<std::uint64_t> stats_misrouted{0};
  std::atomic<std::uint64_t> pushes_stored{0};
  std::atomic<std::uint64_t> envelopes_shed{0};
  std::atomic<std::uint64_t> ops_local{0};      ///< executed on ingress shard
  std::atomic<std::uint64_t> ops_mailed{0};     ///< mailed to a sibling shard
  std::atomic<std::uint64_t> forwarded_node{0}; ///< frames handed to shard 0
  std::atomic<std::uint64_t> gets_resprayed{0}; ///< unserved, mailed to spray
};

/// Per-shard admission pressure, published by each shard's admission tick
/// for shard 0's render. Overload for the PROCESS is judged on the
/// max-pressure shard: one saturated core sheds even if siblings idle.
struct ShardPressure {
  std::atomic<bool> valid{false};
  std::atomic<bool> overloaded{false};
  std::atomic<double> lag_us{0.0};
  std::atomic<double> service_us{0.0};
  std::atomic<double> inflight{0.0};
  std::atomic<std::uint32_t> retry_after_ms{0};
  std::atomic<std::uint64_t> queue_depth{0};
  // Snapshots of the worker controller's registry counters (copied out on
  // the shard thread at tick time; the registry itself is not thread-safe).
  std::atomic<std::uint64_t> client_ops_shed{0};
  std::atomic<std::uint64_t> client_ops_admitted{0};
  std::atomic<std::uint64_t> overload_entered{0};
  std::atomic<std::uint64_t> overload_exited{0};
};

class ShardGroup {
 public:
  /// Plain-data view of one shard's pressure (or the max across shards).
  struct PressureView {
    bool valid = false;
    bool overloaded = false;
    double lag_us = 0.0;
    double service_us = 0.0;
    double inflight = 0.0;
    std::uint32_t retry_after_ms = 0;
    std::uint64_t queue_depth = 0;
  };

  /// Summed transport / runtime counters across every shard.
  struct Totals {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t batched_recv = 0;
    std::uint64_t batched_send = 0;
    std::uint64_t mailbox_drained = 0;
  };

  /// Binds every shard's socket (shard 0 first; workers re-bind its port
  /// with SO_REUSEPORT) and builds the Node on shard 0 — all on the
  /// calling thread, so a bind failure throws before any thread exists.
  /// `store`: the node's store; REQUIRED thread-safe (store::ShardedStore)
  /// when shards > 1, may be null (volatile MemStore) when shards == 1.
  ShardGroup(ShardGroupOptions options, std::unique_ptr<store::Store> store);
  ~ShardGroup();

  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  [[nodiscard]] core::Node& node() { return *node_; }
  [[nodiscard]] runtime::RealTimeRuntime& shard0_runtime() {
    return *shards_[0]->rt;
  }
  [[nodiscard]] net::UdpTransport& shard0_transport() {
    return *shards_[0]->transport;
  }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::uint16_t local_port() const {
    return shards_[0]->transport->local_port();
  }
  [[nodiscard]] runtime::RealTimeRuntime& shard_runtime(std::size_t k) {
    return *shards_[k]->rt;
  }
  [[nodiscard]] net::UdpTransport& shard_transport(std::size_t k) {
    return *shards_[k]->transport;
  }
  /// Null when the group was built without a stream listener.
  [[nodiscard]] net::StreamTransport* stream() { return stream_.get(); }
  [[nodiscard]] net::DualTransport* dual() { return dual_.get(); }
  /// Resolved stream listener port (0 when streams are disabled).
  [[nodiscard]] std::uint16_t stream_port() const {
    return stream_ ? stream_->listen_port() : 0;
  }

  /// Starts the node, installs the shard router on every socket and
  /// schedules snapshot publishing + per-shard admission ticks. Call on
  /// the boot thread BEFORE start_workers().
  void start(const std::vector<NodeId>& peer_seeds);
  /// Spawns the worker shard threads (no-op with one shard).
  void start_workers();
  /// Runs shard 0's loop on the calling thread until stop().
  void run();
  /// Stops every shard's loop. Async-signal-safe (atomic flag + eventfd
  /// write per runtime), so it is callable straight from a SIGINT/SIGTERM
  /// handler — each loop wakes promptly and exits.
  void stop();
  /// Joins the worker threads. Call after run() returns, before teardown.
  void shutdown();

  /// Hot-path per-op metrics shared by the node and every executor (obs
  /// counters/histograms are atomic). `hot` must outlive the group.
  void set_op_metrics(const core::OpHotMetrics* hot);

  [[nodiscard]] PressureView pressure(std::size_t shard) const;
  /// Max-pressure shard across the whole process, node's controller
  /// included — the overload signal the server exports.
  [[nodiscard]] PressureView max_pressure() const;
  [[nodiscard]] Totals totals() const;

  /// Folds every shard's executor counters (and worker admission counters)
  /// into `into` under the same names the single-shard node uses, so one
  /// scrape shows one node regardless of shard count. Shard-0 thread only.
  void merge_counters(MetricsRegistry& into) const;

 private:
  /// Addressed replica peers for the executor push path, refreshed from
  /// shard 0 every snapshot_period. A plain value copied into each shard.
  struct SliceSnapshot {
    bool valid = false;
    SliceId my_slice = 0;
    std::uint32_t slice_count = 1;
    std::uint8_t serve_protocol = core::kOpProtocolVersion;
    std::vector<std::pair<NodeId, sockaddr_in>> replica_peers;
  };

  struct Shard {
    std::size_t index = 0;
    std::unique_ptr<runtime::RealTimeRuntime> rt;
    std::unique_ptr<net::UdpTransport> transport;
    /// Worker shards only: private registry feeding the controller (the
    /// common MetricsRegistry is single-threaded by design).
    std::unique_ptr<MetricsRegistry> metrics;
    std::unique_ptr<core::AdmissionController> admission;
    SliceSnapshot snapshot;  ///< shard-thread-local copy
    ShardPressure pressure;
    ShardExecCounters counters;
    std::thread thread;
  };

  [[nodiscard]] core::AdmissionController* shard_admission(std::size_t k);
  void route(std::size_t from, const net::Message& msg);
  void route_envelope(std::size_t from, const net::Message& msg);
  void route_push(std::size_t from, const net::Message& msg);
  /// Hands `msg` to shard 0's Node (mailing an address observation ahead
  /// of it so replies can route), from any shard thread.
  void forward_to_node(std::size_t from, net::Message msg);
  /// Executes client ops owned by shard `k` on its thread: the ported
  /// handle_ops_delivery op switch against the shared store.
  void execute_ops(std::size_t k, std::vector<core::RoutedOp> ops,
                   sockaddr_in client_addr);
  /// Stores replica-push objects owned by shard `k`.
  void store_pushed(std::size_t k, std::vector<store::Object> objects);
  /// Sends `msg` through shard 0's DualTransport (stream routing happens
  /// there), from any shard thread. Stream connections are owned by shard
  /// 0's loop, so executor replies to stream clients ride its mailbox.
  void send_via_dual(std::size_t k, net::Message msg);
  void publish_snapshot();
  void admission_tick(std::size_t k);
  void note_exec(std::size_t k, core::OpType type, SimTime started);

  ShardGroupOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Destruction order matters: the node references dual_, dual_ references
  // stream_ and shard 0's transport/runtime — members are torn down in
  // exactly the reverse of this declaration order.
  std::unique_ptr<net::StreamTransport> stream_;
  std::unique_ptr<net::DualTransport> dual_;
  std::unique_ptr<core::Node> node_;
  const core::OpHotMetrics* hot_ = nullptr;
  runtime::TimerHandle snapshot_timer_;
};

}  // namespace dataflasks::server
