#include "server/shard_group.hpp"

#include <arpa/inet.h>

#include <algorithm>
#include <utility>

#include "common/ensure.hpp"
#include "core/messages.hpp"
#include "slicing/slice_map.hpp"
#include "store/sharded_store.hpp"

namespace dataflasks::server {

namespace {

/// Resolves the UDP bind host to the host-byte-order IPv4 address the
/// stream listener binds. Misconfiguration is fatal at boot, like a UDP
/// bind failure.
std::uint32_t stream_listen_ip(const std::string& bind_host) {
  const auto dotted = net::resolve_ipv4(bind_host);
  ensure(dotted.has_value(),
         "ShardGroup: stream listener host does not resolve");
  const in_addr_t addr = ::inet_addr(dotted->c_str());
  ensure(addr != INADDR_NONE || *dotted == "255.255.255.255",
         "ShardGroup: bad stream listener address");
  return ntohl(addr);
}

/// Distinct deterministic RNG stream per shard (golden-ratio mix, same
/// spirit as splitmix64): shards must not replay each other's gossip or
/// spray choices.
std::uint64_t shard_seed(std::uint64_t seed, std::size_t k) {
  return seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(k) + 1));
}

}  // namespace

ShardGroup::ShardGroup(ShardGroupOptions options,
                       std::unique_ptr<store::Store> store)
    : options_(std::move(options)) {
  const std::size_t n = std::max<std::size_t>(1, options_.shards);
  options_.shards = n;
  ensure(n == 1 || store != nullptr,
         "ShardGroup: shards > 1 requires an injected thread-safe store");

  shards_.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    auto shard = std::make_unique<Shard>();
    shard->index = k;
    shard->rt = std::make_unique<runtime::RealTimeRuntime>(
        shard_seed(options_.seed, k));

    net::UdpTransport::Options net = options_.net;
    if (n > 1) {
      // All shards share the listen address; SO_REUSEPORT makes the kernel
      // the ingress load balancer (hash of the source 4-tuple).
      net.reuse_port = true;
      if (k > 0) net.port = shards_[0]->transport->local_port();
    }
    if (k == 0 && options_.stream_port >= 0) {
      // Streams live on shard 0 and bind before its UDP socket, so the
      // transport stamps the RESOLVED stream port (ephemeral included) into
      // the endpoint gossip carries from the very first self-descriptor.
      net::StreamTransport::Options sopts;
      sopts.listen = true;
      sopts.listen_ip = stream_listen_ip(net.bind_host);
      sopts.listen_port = static_cast<std::uint16_t>(options_.stream_port);
      stream_ = std::make_unique<net::StreamTransport>(*shard->rt, sopts);
    }
    if (stream_ != nullptr) {
      // EVERY shard advertises the (shared) listener: with SO_REUSEPORT a
      // client's discovery probe lands on an arbitrary sibling socket, and
      // a worker answering "no stream port" would leave that client on UDP.
      net.advertise_stream_port = stream_->listen_port();
    }
    shard->transport = std::make_unique<net::UdpTransport>(*shard->rt, net);

    if (k > 0 && options_.node.admission.enabled) {
      shard->metrics = std::make_unique<MetricsRegistry>();
      auto* rt = shard->rt.get();
      shard->admission = std::make_unique<core::AdmissionController>(
          [rt]() { return rt->now(); }, options_.node.admission,
          *shard->metrics);
      shard->admission->set_load_probe(
          [rt]() { return rt->pending_events(); });
    }
    shards_.push_back(std::move(shard));
  }

  if (stream_ != nullptr) {
    // Policy: state-transfer traffic prefers streams (the donor bursts
    // megabyte pages over them); client envelopes arrive on whatever the
    // client chose; everything gossipy stays UDP unless oversized.
    net::DualTransport::Options dopts;
    dopts.prefer_stream = [](std::uint16_t type) {
      return type == core::kStRequest || type == core::kStReply;
    };
    dual_ = std::make_unique<net::DualTransport>(
        *shards_[0]->rt, *shards_[0]->transport, stream_.get(),
        std::move(dopts));
  }

  // The full protocol node lives on shard 0; its store is the shared
  // (sharded) one, so executor shards reach the same data. With streams
  // enabled it talks through the DualTransport, which routes per message.
  net::Transport& node_transport =
      dual_ ? static_cast<net::Transport&>(*dual_)
            : static_cast<net::Transport&>(*shards_[0]->transport);
  node_ = std::make_unique<core::Node>(
      options_.id, options_.capacity, *shards_[0]->rt, node_transport,
      options_.node, shards_[0]->rt->rng().fork(0xDF).next_u64(),
      std::move(store));
}

ShardGroup::~ShardGroup() { shutdown(); }

core::AdmissionController* ShardGroup::shard_admission(std::size_t k) {
  // Shard 0's executor shares the node's controller (same thread), so its
  // sheds land in the node registry and render natively.
  return k == 0 ? node_->admission() : shards_[k]->admission.get();
}

void ShardGroup::start(const std::vector<NodeId>& peer_seeds) {
  node_->start(peer_seeds);
  if (shards_.size() == 1) return;  // classic single-runtime server

  // The shard router takes over every socket — including shard 0's, where
  // it REPLACES the node's own registration (route() hands non-executor
  // traffic straight back to the node).
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    Shard& shard = *shards_[k];
    if (k == 0 && dual_ != nullptr) {
      // Registering on the dual replaces the node's own registration for
      // BOTH legs: datagrams and stream frames alike land in route().
      dual_->register_handler(
          options_.id, [this](const net::Message& msg) { route(0, msg); });
    } else {
      shard.transport->register_handler(
          options_.id,
          [this, k](const net::Message& msg) { route(k, msg); });
    }
    if (k > 0) {
      // A UDP stats scrape landing on a worker socket is rendered by shard
      // 0 but answered FROM shard 0's socket: with SO_REUSEPORT both share
      // one source address, so the requester cannot tell the difference.
      shard.transport->set_stats_forwarder(
          [this](const net::Message& msg, const sockaddr_in& from) {
            shards_[0]->rt->post_from_any_thread([this, msg, from]() {
              shards_[0]->transport->answer_stats_request(msg, from);
            });
          });
      if (shard.admission != nullptr) {
        // Worker admission ticks ride the worker's own runtime, probing
        // the worker's own queue — per-shard overload, judged locally.
        shard.rt->schedule_periodic(options_.node.admission.tick_period,
                                    options_.node.admission.tick_period,
                                    [this, k]() { admission_tick(k); });
      }
    }
  }

  publish_snapshot();
  snapshot_timer_ = shards_[0]->rt->schedule_periodic(
      options_.snapshot_period, options_.snapshot_period,
      [this]() { publish_snapshot(); });
}

void ShardGroup::start_workers() {
  for (std::size_t k = 1; k < shards_.size(); ++k) {
    Shard& shard = *shards_[k];
    shard.thread = std::thread([&shard]() { shard.rt->run(); });
  }
}

void ShardGroup::run() { shards_[0]->rt->run(); }

void ShardGroup::stop() {
  // Async-signal-safe: each stop() is an atomic store plus an eventfd
  // write; shards_ itself is immutable after construction.
  for (auto& shard : shards_) shard->rt->stop();
}

void ShardGroup::shutdown() {
  stop();
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

void ShardGroup::set_op_metrics(const core::OpHotMetrics* hot) {
  hot_ = hot;
  node_->set_op_metrics(hot);
}

ShardGroup::PressureView ShardGroup::pressure(std::size_t k) const {
  PressureView view;
  if (k == 0) {
    const core::AdmissionController* adm = node_->admission();
    if (adm == nullptr) return view;
    view.valid = true;
    view.overloaded = adm->overloaded();
    view.lag_us = adm->lag_ewma_us();
    view.service_us = adm->service_ewma_us();
    view.inflight = adm->inflight_estimate();
    view.retry_after_ms = adm->retry_after_ms();
    view.queue_depth = adm->last_queue_depth();
    return view;
  }
  const ShardPressure& p = shards_[k]->pressure;
  if (!p.valid.load(std::memory_order_acquire)) return view;
  view.valid = true;
  view.overloaded = p.overloaded.load(std::memory_order_relaxed);
  view.lag_us = p.lag_us.load(std::memory_order_relaxed);
  view.service_us = p.service_us.load(std::memory_order_relaxed);
  view.inflight = p.inflight.load(std::memory_order_relaxed);
  view.retry_after_ms = p.retry_after_ms.load(std::memory_order_relaxed);
  view.queue_depth = p.queue_depth.load(std::memory_order_relaxed);
  return view;
}

ShardGroup::PressureView ShardGroup::max_pressure() const {
  PressureView max;
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const PressureView view = pressure(k);
    if (!view.valid) continue;
    if (!max.valid) {
      max = view;
      continue;
    }
    max.overloaded = max.overloaded || view.overloaded;
    max.lag_us = std::max(max.lag_us, view.lag_us);
    max.service_us = std::max(max.service_us, view.service_us);
    max.inflight = std::max(max.inflight, view.inflight);
    max.retry_after_ms = std::max(max.retry_after_ms, view.retry_after_ms);
    max.queue_depth = std::max(max.queue_depth, view.queue_depth);
  }
  return max;
}

ShardGroup::Totals ShardGroup::totals() const {
  Totals t;
  for (const auto& shard : shards_) {
    t.sent += shard->transport->total_sent();
    t.delivered += shard->transport->total_delivered();
    t.dropped += shard->transport->total_dropped();
    t.batched_recv += shard->transport->batched_recv();
    t.batched_send += shard->transport->batched_send();
    t.mailbox_drained += shard->rt->mailbox_drained();
  }
  return t;
}

void ShardGroup::merge_counters(MetricsRegistry& into) const {
  std::uint64_t forwarded = 0;
  std::uint64_t local = 0;
  std::uint64_t mailed = 0;
  for (const auto& shard : shards_) {
    const ShardExecCounters& c = shard->counters;
    const auto fold = [&into](const char* name,
                              const std::atomic<std::uint64_t>& v) {
      const std::uint64_t n = v.load(std::memory_order_relaxed);
      if (n != 0) into.counter(name).add(n);
    };
    fold("rh.puts_stored", c.puts_stored);
    fold("rh.puts_superseded", c.puts_superseded);
    fold("rh.put_conflicts", c.put_conflicts);
    fold("rh.deletes_stored", c.deletes_stored);
    fold("rh.delete_conflicts", c.delete_conflicts);
    fold("rh.gets_served", c.gets_served);
    fold("rh.gets_deleted", c.gets_deleted);
    fold("rh.gets_missed", c.gets_missed);
    fold("rh.cas_stored", c.cas_stored);
    fold("rh.cas_failed", c.cas_failed);
    fold("rh.cas_conflicts", c.cas_conflicts);
    fold("rh.stats_misrouted", c.stats_misrouted);
    fold("rh.pushes_stored", c.pushes_stored);
    fold("rh.envelopes_shed", c.envelopes_shed);
    fold("rh.shard_resprayed_gets", c.gets_resprayed);
    forwarded += c.forwarded_node.load(std::memory_order_relaxed);
    local += c.ops_local.load(std::memory_order_relaxed);
    mailed += c.ops_mailed.load(std::memory_order_relaxed);

    // Worker admission counters (shard 0's live in the node registry).
    const ShardPressure& p = shard->pressure;
    const auto fold_p = [&into](const char* name,
                                const std::atomic<std::uint64_t>& v) {
      const std::uint64_t n = v.load(std::memory_order_relaxed);
      if (n != 0) into.counter(name).add(n);
    };
    fold_p("admission.client_ops_shed", p.client_ops_shed);
    fold_p("admission.client_ops_admitted", p.client_ops_admitted);
    fold_p("admission.overload_entered", p.overload_entered);
    fold_p("admission.overload_exited", p.overload_exited);
  }
  if (forwarded != 0) into.counter("shard.forwarded_to_node").add(forwarded);
  if (local != 0) into.counter("shard.ops_local").add(local);
  if (mailed != 0) into.counter("shard.ops_cross_shard").add(mailed);
}

// ---- routing (runs on the ingress shard's thread) --------------------------

void ShardGroup::route(std::size_t from, const net::Message& msg) {
  switch (msg.type) {
    case core::kOpEnvelope:
      route_envelope(from, msg);
      return;
    case core::kReplicatePush:
      route_push(from, msg);
      return;
    default:
      // Gossip, slicing, sprays, anti-entropy, state transfer, replies —
      // the protocol brain on shard 0 owns all of it.
      forward_to_node(from, msg);
      return;
  }
}

void ShardGroup::route_envelope(std::size_t from, const net::Message& msg) {
  Shard& shard = *shards_[from];
  const SliceSnapshot& snap = shard.snapshot;
  const sockaddr_in* client = shard.transport->peers().lookup(msg.src);
  // A client with a live stream answers through shard 0's DualTransport,
  // which picks the leg per reply (oversized → stream, small → UDP). Its
  // datagram source may ALSO be on record — the discovery probe travels
  // over UDP — so the stream check must win, or a megabyte reply would be
  // pushed at the datagram socket and dropped. The zeroed sockaddr (port 0
  // — no real client has it) is the marker execute_ops switches on.
  const bool stream_client =
      stream_ != nullptr && stream_->connected_to_any_thread(msg.src);
  if (!snap.valid || (client == nullptr && !stream_client)) {
    // No slice identity yet (or no reply route): let the node handle the
    // whole envelope the classic way.
    forward_to_node(from, msg);
    return;
  }
  auto envelope = core::decode_op_envelope(msg.payload);
  if (!envelope) return;  // malformed; the node would drop it too
  if (envelope->protocol != snap.serve_protocol) {
    forward_to_node(from, msg);  // node answers kVersionMismatch
    return;
  }

  // Partition: ops for this node's slice split by store partition; stats
  // ops (answered with the full render) and foreign-slice ops go to the
  // node, which serves/sprays them exactly as before.
  std::vector<core::RoutedOp> node_ops;
  std::vector<std::vector<core::RoutedOp>> per_shard(shards_.size());
  for (core::RoutedOp& routed : envelope->ops) {
    if (routed.op.type == core::OpType::kStats ||
        slicing::key_to_slice(routed.op.key, snap.slice_count) !=
            snap.my_slice) {
      node_ops.push_back(std::move(routed));
    } else {
      const std::size_t owner =
          store::ShardedStore::partition_of(routed.op.key, shards_.size());
      per_shard[owner].push_back(std::move(routed));
    }
  }

  if (!node_ops.empty()) {
    forward_to_node(
        from, net::Message{msg.src, msg.dst, core::kOpEnvelope,
                           core::encode(core::OpEnvelope{
                               envelope->protocol, std::move(node_ops)})});
  }
  sockaddr_in client_addr{};  // port 0 = stream client, reply via dual
  if (client != nullptr && !stream_client) client_addr = *client;
  for (std::size_t k = 0; k < per_shard.size(); ++k) {
    if (per_shard[k].empty()) continue;
    if (k == from) {
      shard.counters.ops_local.fetch_add(per_shard[k].size(),
                                         std::memory_order_relaxed);
      execute_ops(from, std::move(per_shard[k]), client_addr);
    } else {
      shard.counters.ops_mailed.fetch_add(per_shard[k].size(),
                                          std::memory_order_relaxed);
      shards_[k]->rt->post_from_any_thread(
          [this, k, ops = std::move(per_shard[k]), client_addr]() mutable {
            execute_ops(k, std::move(ops), client_addr);
          });
    }
  }
}

void ShardGroup::route_push(std::size_t from, const net::Message& msg) {
  Shard& shard = *shards_[from];
  const SliceSnapshot& snap = shard.snapshot;
  if (!snap.valid) {
    forward_to_node(from, msg);
    return;
  }
  auto push = core::decode_replicate_push(msg.payload);
  if (!push) return;

  // In-slice objects store straight into their owner partition; foreign
  // ones ride to the node, whose hinted handoff re-homes them.
  std::vector<store::Object> node_objects;
  std::vector<std::vector<store::Object>> per_shard(shards_.size());
  for (store::Object& object : push->objects) {
    if (slicing::key_to_slice(object.key, snap.slice_count) != snap.my_slice) {
      node_objects.push_back(std::move(object));
      continue;
    }
    const std::size_t owner =
        store::ShardedStore::partition_of(object.key, shards_.size());
    per_shard[owner].push_back(std::move(object));
  }
  if (!node_objects.empty()) {
    forward_to_node(from,
                    net::Message{msg.src, msg.dst, core::kReplicatePush,
                                 core::encode(core::ReplicatePush{
                                     std::move(node_objects)})});
  }
  for (std::size_t k = 0; k < per_shard.size(); ++k) {
    if (per_shard[k].empty()) continue;
    if (k == from) {
      store_pushed(from, std::move(per_shard[k]));
    } else {
      shards_[k]->rt->post_from_any_thread(
          [this, k, objects = std::move(per_shard[k])]() mutable {
            store_pushed(k, std::move(objects));
          });
    }
  }
}

void ShardGroup::forward_to_node(std::size_t from, net::Message msg) {
  Shard& shard = *shards_[from];
  shard.counters.forwarded_node.fetch_add(1, std::memory_order_relaxed);
  if (from == 0) {
    node_->deliver(msg);
    return;
  }
  // Mail the ingress socket's source-address observation ahead of the
  // message, so shard 0 can route the reply (a client on an ephemeral port
  // is known only to the socket its datagram landed on).
  std::optional<sockaddr_in> observed;
  if (const sockaddr_in* addr = shard.transport->peers().lookup(msg.src)) {
    observed = *addr;
  }
  shards_[0]->rt->post_from_any_thread(
      [this, msg = std::move(msg), observed]() {
        if (observed) shards_[0]->transport->observe_peer(msg.src, *observed);
        node_->deliver(msg);
      });
}

// ---- execution (runs on the owner shard's thread) --------------------------

void ShardGroup::note_exec(std::size_t k, core::OpType type, SimTime started) {
  core::AdmissionController* adm = shard_admission(k);
  if (hot_ == nullptr && adm == nullptr) return;
  const SimTime elapsed = shards_[k]->rt->now() - started;
  if (adm != nullptr) adm->note_service(elapsed > 0 ? elapsed : 0);
  if (hot_ == nullptr) return;
  const std::size_t i = core::OpHotMetrics::index(type);
  if (obs::Counter* counter = hot_->ops[i]) counter->add();
  if (obs::LatencyHistogram* hist = hot_->exec_us[i]) {
    hist->record(elapsed > 0 ? static_cast<std::uint64_t>(elapsed) : 0);
  }
}

void ShardGroup::execute_ops(std::size_t k, std::vector<core::RoutedOp> ops,
                             sockaddr_in client_addr) {
  using core::OpReply;
  using core::OpStatus;
  using core::OpType;
  if (ops.empty()) return;
  Shard& shard = *shards_[k];
  ShardExecCounters& c = shard.counters;
  store::Store& store = node_->store();
  const NodeId self = options_.id;
  const NodeId client(ops.front().rid.client);

  // Per-shard admission gate, mirroring the single-shard envelope shed: an
  // overloaded shard answers with one explicit kOverloaded frame instead
  // of executing (siblings may still be admitting — per-core backpressure).
  // Stream-delivered envelopes answer through shard 0's DualTransport (the
  // connection lives on its loop); datagram clients get replies straight
  // from this shard's REUSEPORT socket.
  const bool via_stream = client_addr.sin_port == 0;

  if (core::AdmissionController* adm = shard_admission(k)) {
    const core::AdmissionController::Decision decision =
        adm->admit(core::WorkClass::kClientOp, ops.size());
    if (!decision.admit) {
      c.envelopes_shed.fetch_add(1, std::memory_order_relaxed);
      net::Message shed{self, client, core::kOverloaded,
                        core::encode(core::OverloadReply{
                            ops.front().rid, decision.retry_after_ms})};
      if (via_stream) {
        send_via_dual(k, std::move(shed));
      } else {
        shard.transport->send_to(shed, client_addr);
      }
      return;
    }
  }

  core::OpReplyBatch batch{self, shard.snapshot.my_slice, {}};
  core::ReplicatePush push;
  std::vector<core::RoutedOp> unserved_gets;

  for (const core::RoutedOp& routed : ops) {
    const core::Operation& op = routed.op;
    const SimTime started = shard.rt->now();
    switch (op.type) {
      case OpType::kPut: {
        store::Object object{op.key, op.version.value_or(0), op.value};
        const Status stored = store.put(object);
        if (!stored.ok()) {
          if (stored.error().code == Error::Code::kSuperseded) {
            c.puts_superseded.fetch_add(1, std::memory_order_relaxed);
            batch.replies.push_back(
                OpReply{routed.rid, OpType::kPut, OpStatus::kSuperseded,
                        store::Object{op.key, object.version, {}}});
            break;
          }
          c.put_conflicts.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        c.puts_stored.fetch_add(1, std::memory_order_relaxed);
        batch.replies.push_back(
            OpReply{routed.rid, OpType::kPut, OpStatus::kOk,
                    store::Object{op.key, object.version, {}}});
        push.objects.push_back(std::move(object));
        break;
      }
      case OpType::kDelete: {
        store::Object tomb = store::Object::make_tombstone(
            op.key, op.version.value_or(0), shard.rt->now());
        const Status stored = store.put(tomb);
        if (!stored.ok()) {
          c.delete_conflicts.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        c.deletes_stored.fetch_add(1, std::memory_order_relaxed);
        batch.replies.push_back(
            OpReply{routed.rid, OpType::kDelete, OpStatus::kOk,
                    store::Object{op.key, tomb.version, {}}});
        push.objects.push_back(std::move(tomb));
        break;
      }
      case OpType::kGet: {
        auto found = store.get(op.key, op.version);
        if (found.ok()) {
          store::Object object = std::move(found).value();
          if (object.tombstone) {
            c.gets_deleted.fetch_add(1, std::memory_order_relaxed);
            batch.replies.push_back(
                OpReply{routed.rid, OpType::kGet, OpStatus::kDeleted,
                        store::Object{op.key, object.version, {}}});
          } else {
            c.gets_served.fetch_add(1, std::memory_order_relaxed);
            batch.replies.push_back(OpReply{routed.rid, OpType::kGet,
                                            OpStatus::kOk,
                                            std::move(object)});
          }
          break;
        }
        if (const Version tomb = store.tombstone_version(op.key);
            tomb != 0 && (!op.version || *op.version <= tomb)) {
          c.gets_deleted.fetch_add(1, std::memory_order_relaxed);
          batch.replies.push_back(
              OpReply{routed.rid, OpType::kGet, OpStatus::kDeleted,
                      store::Object{op.key, tomb, {}}});
          break;
        }
        // This partition doesn't hold it: mail the get to shard 0, which
        // re-sprays it into the slice — a sibling replica may serve it.
        c.gets_missed.fetch_add(1, std::memory_order_relaxed);
        unserved_gets.push_back(routed);
        break;
      }
      case OpType::kCompareAndPut: {
        store::Object object{op.key, op.version.value_or(0), op.value};
        const store::CasOutcome outcome =
            store.compare_and_put(object, op.expected);
        switch (outcome.status) {
          case store::CasOutcome::Status::kStored:
            c.cas_stored.fetch_add(1, std::memory_order_relaxed);
            batch.replies.push_back(
                OpReply{routed.rid, OpType::kCompareAndPut, OpStatus::kOk,
                        store::Object{op.key, object.version, {}}});
            push.objects.push_back(std::move(object));
            break;
          case store::CasOutcome::Status::kMismatch:
          case store::CasOutcome::Status::kDeleted:
            c.cas_failed.fetch_add(1, std::memory_order_relaxed);
            batch.replies.push_back(OpReply{
                routed.rid, OpType::kCompareAndPut, OpStatus::kCasFailed,
                store::Object{op.key, outcome.current, {}}});
            break;
          case store::CasOutcome::Status::kConflict:
            c.cas_conflicts.fetch_add(1, std::memory_order_relaxed);
            break;
        }
        break;
      }
      case OpType::kStats:
        // The router sends stats ops to shard 0; one here is a bug or a
        // malformed envelope. Drop, like the single-shard path.
        c.stats_misrouted.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    note_exec(k, op.type, started);
  }

  // Replies leave straight from this shard's socket toward the observed
  // client address (REUSEPORT keeps the source address identical to shard
  // 0's), chunked against the one-datagram budget.
  if (!batch.replies.empty()) {
    core::chunk_by_budget(
        batch.replies,
        [](const OpReply& reply) { return core::encoded_size(reply); },
        [&](std::vector<OpReply>& chunk) {
          net::Message reply{self, client, core::kOpReplyBatch,
                             core::encode(core::OpReplyBatch{
                                 batch.replica, batch.slice,
                                 std::move(chunk)})};
          if (via_stream) {
            send_via_dual(k, std::move(reply));
          } else {
            shard.transport->send_to(reply, client_addr);
          }
        });
  }

  // Immediate redundancy, addressed via the latest slice snapshot: each
  // chunk is encoded once and the buffer shared across the fan-out.
  if (!push.objects.empty() && !shard.snapshot.replica_peers.empty()) {
    core::chunk_by_budget(
        push.objects,
        [](const store::Object& object) {
          return store::encoded_size(object);
        },
        [&](std::vector<store::Object>& chunk) {
          const Payload encoded =
              core::encode(core::ReplicatePush{std::move(chunk)});
          // chunk_by_budget ships a single over-budget object as its own
          // chunk; a push that no datagram can carry (a big value) goes
          // through the dual, which requires a stream to the replica.
          const bool oversized =
              encoded.size() > net::Transport::kDefaultMaxPayload;
          for (const auto& [peer, addr] : shard.snapshot.replica_peers) {
            if (oversized && dual_ != nullptr) {
              send_via_dual(
                  k, net::Message{self, peer, core::kReplicatePush, encoded});
            } else {
              shard.transport->send_to(
                  net::Message{self, peer, core::kReplicatePush, encoded},
                  addr);
            }
          }
        });
  }

  if (!unserved_gets.empty()) {
    c.gets_resprayed.fetch_add(unserved_gets.size(),
                               std::memory_order_relaxed);
    const SliceId target = shard.snapshot.my_slice;
    auto respray = [this, target, gets = std::move(unserved_gets)]() mutable {
      node_->requests().spray_ops(target, std::move(gets));
    };
    if (k == 0) {
      respray();
    } else {
      shards_[0]->rt->post_from_any_thread(std::move(respray));
    }
  }
}

void ShardGroup::send_via_dual(std::size_t k, net::Message msg) {
  if (dual_ == nullptr) return;  // no stream client without a dual
  if (k == 0) {
    dual_->send(std::move(msg));
    return;
  }
  shards_[0]->rt->post_from_any_thread(
      [this, msg = std::move(msg)]() mutable { dual_->send(std::move(msg)); });
}

void ShardGroup::store_pushed(std::size_t k, std::vector<store::Object> objects) {
  Shard& shard = *shards_[k];
  store::Store& store = node_->store();
  for (store::Object& object : objects) {
    if (store.put(std::move(object)).ok()) {
      shard.counters.pushes_stored.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

// ---- shard 0 -> executors: slice identity + replica addresses --------------

void ShardGroup::publish_snapshot() {
  SliceSnapshot snap;
  snap.valid = true;
  snap.my_slice = node_->slice();
  snap.slice_count = node_->slice_config().slice_count;
  snap.serve_protocol = options_.node.request.serve_protocol;
  for (const NodeId peer : node_->slices().slice_peers(
           options_.node.request.direct_replication)) {
    if (peer == options_.id) continue;
    if (const sockaddr_in* addr = shards_[0]->transport->peers().lookup(peer)) {
      snap.replica_peers.emplace_back(peer, *addr);
    }
  }
  shards_[0]->snapshot = snap;
  for (std::size_t k = 1; k < shards_.size(); ++k) {
    shards_[k]->rt->post_from_any_thread(
        [shard = shards_[k].get(), snap]() { shard->snapshot = snap; });
  }
}

void ShardGroup::admission_tick(std::size_t k) {
  Shard& shard = *shards_[k];
  core::AdmissionController& adm = *shard.admission;
  adm.tick();
  ShardPressure& p = shard.pressure;
  p.overloaded.store(adm.overloaded(), std::memory_order_relaxed);
  p.lag_us.store(adm.lag_ewma_us(), std::memory_order_relaxed);
  p.service_us.store(adm.service_ewma_us(), std::memory_order_relaxed);
  p.inflight.store(adm.inflight_estimate(), std::memory_order_relaxed);
  p.retry_after_ms.store(adm.retry_after_ms(), std::memory_order_relaxed);
  p.queue_depth.store(adm.last_queue_depth(), std::memory_order_relaxed);
  // The controller counts into this shard's private registry (not
  // thread-safe); snapshot the values the process-level render folds in.
  const MetricsRegistry& m = *shard.metrics;
  p.client_ops_shed.store(m.counter_value("admission.client_ops_shed"),
                          std::memory_order_relaxed);
  p.client_ops_admitted.store(
      m.counter_value("admission.client_ops_admitted"),
      std::memory_order_relaxed);
  p.overload_entered.store(m.counter_value("admission.overload_entered"),
                           std::memory_order_relaxed);
  p.overload_exited.store(m.counter_value("admission.overload_exited"),
                          std::memory_order_relaxed);
  p.valid.store(true, std::memory_order_release);
}

}  // namespace dataflasks::server
