// dataflasks_server: boots ONE DataFlasks node as a standalone process on
// real-clock runtimes and UDP transports — the deployment face of the exact
// protocol code the simulator drives with thousands of in-process nodes.
//
//   $ dataflasks_server --id 0 --listen 127.0.0.1:7100
//   $ dataflasks_server --id 1 --listen 127.0.0.1:7101 --seed 127.0.0.1:7100
//
// One --seed host:port is enough to join: the seed's node id is discovered
// with a transport probe, and every other member's address arrives by
// gossip (PSS descriptors and slice adverts carry endpoints). Static
// --peer id@host:port maps still work and are pinned.
//
// --shards N (default: one per hardware thread) runs the process as a
// shared-nothing shard group: N runtime threads, each with its own
// SO_REUSEPORT socket, executing client ops against a partitioned store
// while membership/gossip stays on shard 0 (see server/shard_group.hpp).
// --shards 1 is the classic single-runtime server, unchanged. Runs until
// SIGINT/SIGTERM. See src/server/config.hpp for the full flag reference.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "core/node.hpp"
#include "net/udp_transport.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_endpoint.hpp"
#include "runtime/real_time_runtime.hpp"
#include "server/config.hpp"
#include "server/shard_group.hpp"
#include "store/log_store.hpp"
#include "store/memstore.hpp"
#include "store/sharded_store.hpp"
#include "store/storage_engine.hpp"

namespace {

dataflasks::server::ShardGroup* g_group = nullptr;

void handle_signal(int) {
  // ShardGroup::stop() is async-signal-safe: per runtime, an atomic flag
  // plus an eventfd write — every shard loop wakes promptly and exits.
  if (g_group != nullptr) g_group->stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dataflasks;

  std::vector<std::string> args(argv + 1, argv + argc);
  auto parsed = server::parse_server_args(args);
  if (!parsed) {
    std::fprintf(stderr, "dataflasks_server: %s\n",
                 parsed.error().message.c_str());
    std::fprintf(stderr,
                 "usage: dataflasks_server [--config FILE] [--id N] "
                 "[--listen HOST:PORT] [--advertise HOST] "
                 "[--peer ID@HOST:PORT ...] [--seed HOST:PORT|N ...] "
                 "[--capacity X] [--slices K] [--gossip-ms N] [--ae-ms N] "
                 "[--store memory|durable|log] [--data-dir DIR] "
                 "[--compact-interval-sec N] [--max-store-bytes N] "
                 "[--reap-ms N] [--metrics-port N] [--stream-port N] "
                 "[--log-level LEVEL] [--shards N]\n");
    return 1;
  }
  const server::ServerConfig config = std::move(parsed).value();

  if (const auto level = log_level_from_string(config.log_level)) {
    set_global_log_level(*level);
  }
  Logger log("server");

  const std::size_t shards = config.resolved_shards();

  // Each process gets its own deterministic stream: either the configured
  // seed or one derived from the node id (so a homogeneously-configured
  // fleet still gossips independently). Shards fork per-shard streams.
  const std::uint64_t seed =
      config.seed != 0 ? config.seed : 0xDF5EED00ULL + config.id;

  // ---- store assembly ----
  // Single shard: the classic wiring (one durable store, or the node's own
  // volatile MemStore). Multi shard: a ShardedStore with one partition per
  // shard — per-partition locks make it safe for the executor threads, and
  // its constructor re-homes recovered objects across --shards changes.
  // Durable partitions get their own generation files / log files;
  // partition 0 keeps the unsuffixed name so existing data directories
  // upgrade in place.
  //
  // --store durable is the snapshot + journal-tail StorageEngine;
  // --store log keeps the legacy full-replay LogStore (the recovery
  // benchmark's baseline).
  std::unique_ptr<store::Store> assembled;
  // Engine pointers survive the moves below so the metrics renderer can
  // read journal/snapshot stats (those accessors are cross-thread safe).
  std::vector<store::StorageEngine*> engines;
  if (config.store != server::StoreKind::kMemory || shards > 1) {
    const auto recovery_start = std::chrono::steady_clock::now();
    std::vector<std::unique_ptr<store::Store>> partitions;
    std::size_t recovered = 0;
    std::size_t snapshot_objects = 0;
    std::size_t tail_records = 0;
    std::uint64_t newest_generation = 0;
    for (std::size_t k = 0; k < shards; ++k) {
      const std::string shard_suffix =
          k > 0 ? "-shard" + std::to_string(k) : "";
      if (config.store == server::StoreKind::kDurable) {
        auto engine = std::make_unique<store::StorageEngine>(
            config.store_base_path() + shard_suffix);
        if (!engine->open_status().ok()) {
          std::fprintf(stderr, "dataflasks_server: %s\n",
                       engine->open_status().error().message.c_str());
          return 1;
        }
        // Loud recovery: every anomaly worked around (corrupt snapshot
        // fallback, torn journal tail) is printed, never swallowed.
        for (const std::string& warning : engine->recovery().warnings) {
          log.warn("store recovery: ", warning);
        }
        recovered += engine->object_count();
        snapshot_objects += engine->recovery().snapshot_objects;
        tail_records += engine->recovery().records_replayed;
        newest_generation =
            std::max(newest_generation, engine->generation());
        engines.push_back(engine.get());
        partitions.push_back(std::move(engine));
      } else if (config.store == server::StoreKind::kLog) {
        auto log_store = std::make_unique<store::LogStore>(
            config.store_base_path() + shard_suffix + ".log");
        if (!log_store->open_status().ok()) {
          std::fprintf(stderr, "dataflasks_server: %s\n",
                       log_store->open_status().error().message.c_str());
          return 1;
        }
        recovered += log_store->object_count();
        partitions.push_back(std::move(log_store));
      } else {
        partitions.push_back(std::make_unique<store::MemStore>());
      }
    }
    if (config.store == server::StoreKind::kDurable) {
      // The smoke test greps this line to assert restart went through the
      // checkpointed path, not a full-history replay.
      std::printf("dataflasks_server: recovered snapshot+tail from %s "
                  "(generation %llu: %zu snapshot objects + %zu journal "
                  "records -> %zu live, %zu partitions)\n",
                  config.store_base_path().c_str(),
                  static_cast<unsigned long long>(newest_generation),
                  snapshot_objects, tail_records, recovered, shards);
    } else if (config.store == server::StoreKind::kLog) {
      std::printf("dataflasks_server: durable store %s (%zu objects "
                  "recovered, %zu partitions)\n",
                  config.store_path().c_str(), recovered, shards);
    }
    if (config.store != server::StoreKind::kMemory) {
      // The recovery benchmark greps this: wall time spent rebuilding the
      // store, comparable across --store durable and --store log.
      const double recovery_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - recovery_start)
              .count();
      std::printf("dataflasks_server: store recovery took %.1f ms\n",
                  recovery_ms);
    }
    if (shards == 1) {
      assembled = std::move(partitions.front());
    } else {
      auto sharded =
          std::make_unique<store::ShardedStore>(std::move(partitions));
      if (sharded->rebalanced() > 0) {
        log.info("rebalanced ", sharded->rebalanced(),
                 " objects across ", shards, " store partitions");
      }
      assembled = std::move(sharded);
    }
  }

  server::ShardGroupOptions group_options;
  group_options.id = NodeId(config.id);
  group_options.capacity = config.capacity;
  group_options.seed = seed;
  group_options.shards = shards;
  group_options.net.bind_host = config.listen_host;
  group_options.net.port = config.listen_port;
  group_options.net.advertise_host = config.advertise_host;
  group_options.stream_port = config.stream_port;
  group_options.node = config.node_options();

  server::ShardGroup group(group_options, std::move(assembled));
  core::Node& node = group.node();
  runtime::RealTimeRuntime& rt = group.shard0_runtime();
  net::UdpTransport& transport = group.shard0_transport();

  if (!transport.local_endpoint().has_value()) {
    // Binding the wildcard without an advertise host means self-descriptors
    // carry no endpoint: peers can still reach us through configuration and
    // datagram sources, but gossip address healing is off for this node.
    log.warn("listen=", config.listen_host,
             " is not advertisable; set --advertise HOST so peers can "
             "gossip-learn this node's address");
  }
  for (const server::PeerSpec& peer : config.peers) {
    transport.add_peer(NodeId(peer.id), peer.host, peer.port);
  }

  // ---- observability ----
  // One process-wide registry. The request hot path (node AND executor
  // shards — obs counters/histograms are atomic) holds direct pointers to
  // its per-op counters/histograms; instantaneous health is polled into
  // gauges at render time, so a node nobody scrapes pays nothing for them.
  obs::MetricsRegistry registry;
  core::OpHotMetrics hot;
  {
    const char* kOpNames[core::OpHotMetrics::kOpTypes] = {
        "put", "get", "delete", "cas", "stats"};
    for (std::size_t i = 0; i < core::OpHotMetrics::kOpTypes; ++i) {
      const std::string label = std::string("op=\"") + kOpNames[i] + "\"";
      hot.ops[i] = &registry.counter(
          "df_ops_total", label, "Operations executed by this node");
      hot.exec_us[i] = &registry.histogram(
          "df_op_exec_us", label,
          "Local per-operation execution latency (microseconds)");
    }
  }
  auto render_stats = [&]() {
    const pss::View& view = node.peer_sampling().view();
    registry.gauge("df_pss_view_size", "", "Partial-view entries held")
        .set(static_cast<double>(view.size()));
    registry.gauge("df_pss_view_capacity", "", "Partial-view capacity")
        .set(static_cast<double>(view.capacity()));
    registry
        .gauge("df_ae_backlog", "",
               "Objects requested in the latest anti-entropy exchange")
        .set(static_cast<double>(node.ae_backlog()));
    registry
        .gauge("df_handoff_backlog", "",
               "Misrouted objects buffered for re-homing")
        .set(static_cast<double>(node.requests().handoff_backlog()));
    registry.gauge("df_address_book_size", "", "Peer addresses known")
        .set(static_cast<double>(transport.peers().size()));
    registry
        .gauge("df_address_book_learned", "",
               "Gossip-learned (unpinned) peer addresses")
        .set(static_cast<double>(transport.peers().learned_count()));
    registry
        .gauge("df_runtime_queue_depth", "",
               "Events pending on the runtime loop (shard 0)")
        .set(static_cast<double>(rt.pending_events()));
    registry.gauge("df_shards", "", "Shared-nothing runtime shards")
        .set(static_cast<double>(group.shard_count()));
    // Process overload = the max-pressure shard (node's controller
    // included): one saturated core sheds even if its siblings idle.
    if (const auto pressure = group.max_pressure(); pressure.valid) {
      registry
          .gauge("df_admission_overloaded", "",
                 "1 while admission control is shedding load")
          .set(pressure.overloaded ? 1.0 : 0.0);
      registry
          .gauge("df_admission_loop_lag_us", "",
                 "Event-loop lag EWMA seen by the admission tick")
          .set(pressure.lag_us);
      registry
          .gauge("df_admission_service_us", "",
                 "Smoothed per-operation service latency")
          .set(pressure.service_us);
      registry
          .gauge("df_admission_inflight_estimate", "",
                 "Little's-law in-flight operation estimate")
          .set(pressure.inflight);
      registry
          .gauge("df_admission_retry_after_ms", "",
                 "Retry-after hint currently sent with sheds")
          .set(static_cast<double>(pressure.retry_after_ms));
      registry
          .gauge("df_admission_max_shard_queue_depth", "",
                 "Runtime queue depth on the max-pressure shard")
          .set(static_cast<double>(pressure.queue_depth));
    }
    registry.gauge("df_store_objects", "", "Objects held by the data store")
        .set(static_cast<double>(node.store().object_count()));
    registry
        .gauge("df_store_value_bytes", "", "Value bytes held by the store")
        .set(static_cast<double>(node.store().value_bytes()));
    const store::StoreBreakdown breakdown = node.store().breakdown();
    registry
        .gauge("df_store_live_objects", "",
               "Live (non-tombstone) objects in the store")
        .set(static_cast<double>(breakdown.live_objects));
    registry
        .gauge("df_store_live_bytes", "",
               "Value bytes held by live objects")
        .set(static_cast<double>(breakdown.live_bytes));
    registry
        .gauge("df_store_tombstone_objects", "",
               "Tombstones awaiting grace-period GC")
        .set(static_cast<double>(breakdown.tombstone_objects));
    registry
        .counter("df_store_keys_expired_total", "",
                 "Key versions removed by TTL expiry")
        .set(node.metrics().counter_value("node.keys_expired"));
    registry
        .counter("df_store_keys_evicted_total", "",
                 "Keys evicted under the --max-store-bytes budget")
        .set(node.metrics().counter_value("node.keys_evicted"));
    if (!engines.empty()) {
      std::size_t tail_bytes = 0;
      double oldest_age = 0.0;
      std::uint64_t generation = 0;
      for (const store::StorageEngine* engine : engines) {
        tail_bytes += engine->journal_bytes();
        oldest_age = std::max(oldest_age, engine->snapshot_age_seconds());
        generation = std::max(generation, engine->generation());
      }
      registry
          .gauge("df_store_journal_tail_bytes", "",
                 "Journal bytes appended since the last checkpoint")
          .set(static_cast<double>(tail_bytes));
      registry
          .gauge("df_store_snapshot_age_seconds", "",
                 "Seconds since the last checkpoint (oldest partition)")
          .set(oldest_age);
      registry
          .gauge("df_store_generation", "",
                 "Current snapshot/journal generation (newest partition)")
          .set(static_cast<double>(generation));
    }
    const server::ShardGroup::Totals totals = group.totals();
    registry.counter("df_transport_sent_total", "", "Datagrams sent")
        .set(totals.sent);
    registry
        .counter("df_transport_delivered_total", "", "Datagrams delivered")
        .set(totals.delivered);
    registry.counter("df_transport_dropped_total", "", "Datagrams dropped")
        .set(totals.dropped);
    registry
        .counter("df_transport_batched_recv_total", "",
                 "Datagrams received via batched recvmmsg")
        .set(totals.batched_recv);
    registry
        .counter("df_transport_batched_send_total", "",
                 "Datagrams sent via batched sendmmsg")
        .set(totals.batched_send);
    registry
        .counter("df_mailbox_drained_total", "",
                 "Cross-shard mailbox closures executed")
        .set(totals.mailbox_drained);
    if (net::StreamTransport* stream = group.stream()) {
      const net::StreamTransport::Counters& sc = stream->counters();
      const auto val = [](const std::atomic<std::uint64_t>& v) {
        return v.load(std::memory_order_relaxed);
      };
      registry
          .counter("df_stream_accepted_total", "",
                   "Stream connections accepted")
          .set(val(sc.accepted));
      registry.counter("df_stream_dialed_total", "", "Outbound stream dials")
          .set(val(sc.dialed));
      registry
          .counter("df_stream_dial_failures_total", "",
                   "Stream dials that never opened")
          .set(val(sc.dial_failures));
      registry
          .counter("df_stream_closed_total", "", "Stream connections closed")
          .set(val(sc.closed));
      registry
          .gauge("df_stream_active", "", "Stream connections currently open")
          .set(static_cast<double>(val(sc.active)));
      registry
          .counter("df_stream_bytes_in_total", "", "Stream bytes received")
          .set(val(sc.io.bytes_in));
      registry.counter("df_stream_bytes_out_total", "", "Stream bytes sent")
          .set(val(sc.io.bytes_out));
      registry
          .counter("df_stream_frames_in_total", "",
                   "Stream frames reassembled and delivered")
          .set(val(sc.io.frames_in));
      registry
          .counter("df_stream_frames_out_total", "", "Stream frames queued")
          .set(val(sc.io.frames_out));
      registry
          .counter("df_stream_reassembly_errors_total", "",
                   "Stream frame decode failures (connection dropped)")
          .set(val(sc.io.reassembly_errors));
      registry
          .counter("df_stream_egress_overflows_total", "",
                   "Stream connections closed for egress overflow")
          .set(val(sc.io.egress_overflows));
      registry
          .gauge("df_stream_egress_queue_hwm_bytes", "",
                 "High-water mark of any connection's egress queue")
          .set(static_cast<double>(val(sc.io.egress_queue_hwm)));
      if (net::DualTransport* dual = group.dual()) {
        registry
            .counter("df_stream_dropped_no_stream_total", "",
                     "Oversized sends dropped with no stream path")
            .set(dual->dropped_no_stream());
      }
    }
    // The node's per-subsystem event counters ride along as one labeled
    // family; executor-shard counters fold into the same names so CLI
    // stats, UDP scrapes and HTTP scrapes all see one node.
    MetricsRegistry merged;
    for (const auto& [name, value] : node.metrics().all_counters()) {
      merged.counter(name).add(value);
    }
    group.merge_counters(merged);
    return registry.render() +
           obs::render_node_counters(merged, "df_node_events_total");
  };
  group.set_op_metrics(&hot);
  node.set_stats_provider(render_stats);       // Operation::stats() admin op
  transport.set_stats_provider(render_stats);  // kStatsRequest UDP frames
  // Admission control reads the loop's queue depth through the same probe
  // the df_runtime_queue_depth gauge polls (worker shards probe their own
  // loops; see ShardGroup).
  node.set_load_probe([&rt]() { return rt.pending_events(); });

  // Seed-only join: each probe reply names the node id living at a seed
  // address; feed it into the PSS as a bootstrap contact and let gossip
  // learn the rest of the membership (and its addresses) from there.
  transport.set_seed_listener([&node, &log](NodeId contact) {
    log.info("seed resolved to ", to_string(contact));
    node.add_contact(contact);
  });
  for (const server::SeedSpec& seed_spec : config.seeds) {
    transport.add_seed(seed_spec.host, seed_spec.port);
  }

  group.start(config.peer_ids());

  // Optional plain-TCP Prometheus endpoint (--metrics-port; 0 = ephemeral).
  // Printed before the ready line so scripts can parse both in one pass.
  std::optional<obs::MetricsTcpEndpoint> metrics_endpoint;
  if (config.metrics_port >= 0) {
    metrics_endpoint.emplace(
        rt, config.listen_host,
        static_cast<std::uint16_t>(config.metrics_port), render_stats);
    std::printf("dataflasks_server: node %llu metrics on %s:%u\n",
                static_cast<unsigned long long>(config.id),
                config.listen_host.c_str(), metrics_endpoint->port());
  }

  // Stream listener line precedes the ready line (like the metrics line)
  // so scripts parse the resolved ephemeral port in the same pass.
  if (group.stream() != nullptr) {
    std::printf("dataflasks_server: node %llu streams on %s:%u\n",
                static_cast<unsigned long long>(config.id),
                config.listen_host.c_str(), group.stream_port());
  }

  g_group = &group;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  // Worker shard threads spawn only after every socket is bound and every
  // handler installed, so the ready line below is an honest contract:
  // scripts (and the CI smoke test) wait for it before pointing clients at
  // the process.
  group.start_workers();
  std::printf("dataflasks_server: node %llu ready on %s:%u (%zu peers, %zu "
              "seeds, %u slices, %zu shards)\n",
              static_cast<unsigned long long>(config.id),
              config.listen_host.c_str(), transport.local_port(),
              config.peers.size(), config.seeds.size(), config.slices,
              group.shard_count());
  std::fflush(stdout);

  group.run();

  // SIGINT/SIGTERM stopped every shard loop; join the workers before any
  // teardown so no executor touches the store or a socket mid-destruction.
  group.shutdown();
  node.crash();
  const server::ShardGroup::Totals totals = group.totals();
  std::printf("dataflasks_server: node %llu stopped (sent=%llu "
              "delivered=%llu dropped=%llu)\n",
              static_cast<unsigned long long>(config.id),
              static_cast<unsigned long long>(totals.sent),
              static_cast<unsigned long long>(totals.delivered),
              static_cast<unsigned long long>(totals.dropped));
  return 0;
}
