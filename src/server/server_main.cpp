// dataflasks_server: boots ONE DataFlasks node as a standalone process on a
// real-clock runtime and a UDP transport — the deployment face of the exact
// protocol code the simulator drives with thousands of in-process nodes.
//
//   $ dataflasks_server --id 0 --listen 127.0.0.1:7100
//   $ dataflasks_server --id 1 --listen 127.0.0.1:7101 --seed 127.0.0.1:7100
//
// One --seed host:port is enough to join: the seed's node id is discovered
// with a transport probe, and every other member's address arrives by
// gossip (PSS descriptors and slice adverts carry endpoints). Static
// --peer id@host:port maps still work and are pinned. Runs until
// SIGINT/SIGTERM. See src/server/config.hpp for the full flag and
// config-file reference.
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "core/node.hpp"
#include "net/udp_transport.hpp"
#include "runtime/real_time_runtime.hpp"
#include "server/config.hpp"
#include "store/log_store.hpp"

namespace {

dataflasks::runtime::RealTimeRuntime* g_runtime = nullptr;

void handle_signal(int) {
  // stop() is an atomic flag; the poll loop wakes on EINTR and exits.
  if (g_runtime != nullptr) g_runtime->stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dataflasks;

  std::vector<std::string> args(argv + 1, argv + argc);
  auto parsed = server::parse_server_args(args);
  if (!parsed) {
    std::fprintf(stderr, "dataflasks_server: %s\n",
                 parsed.error().message.c_str());
    std::fprintf(stderr,
                 "usage: dataflasks_server [--config FILE] [--id N] "
                 "[--listen HOST:PORT] [--advertise HOST] "
                 "[--peer ID@HOST:PORT ...] [--seed HOST:PORT|N ...] "
                 "[--capacity X] [--slices K] [--gossip-ms N] [--ae-ms N] "
                 "[--store memory|durable] [--data-dir DIR] "
                 "[--log-level LEVEL]\n");
    return 1;
  }
  const server::ServerConfig config = std::move(parsed).value();

  if (const auto level = log_level_from_string(config.log_level)) {
    set_global_log_level(*level);
  }
  Logger log("server");

  // Each process gets its own deterministic stream: either the configured
  // seed or one derived from the node id (so a homogeneously-configured
  // fleet still gossips independently).
  const std::uint64_t seed =
      config.seed != 0 ? config.seed : 0xDF5EED00ULL + config.id;

  runtime::RealTimeRuntime rt(seed);
  net::UdpTransport::Options net_options;
  net_options.bind_host = config.listen_host;
  net_options.port = config.listen_port;
  net_options.advertise_host = config.advertise_host;
  net::UdpTransport transport(rt, net_options);
  if (!transport.local_endpoint().has_value()) {
    // Binding the wildcard without an advertise host means self-descriptors
    // carry no endpoint: peers can still reach us through configuration and
    // datagram sources, but gossip address healing is off for this node.
    log.warn("listen=", config.listen_host,
             " is not advertisable; set --advertise HOST so peers can "
             "gossip-learn this node's address");
  }
  for (const server::PeerSpec& peer : config.peers) {
    transport.add_peer(NodeId(peer.id), peer.host, peer.port);
  }

  // Durable store (--store durable): an append-only CRC'd log this process
  // recovers on restart — tombstones included, so deletes survive too.
  std::unique_ptr<store::Store> durable;
  if (config.store == server::StoreKind::kDurable) {
    auto log_store = std::make_unique<store::LogStore>(config.store_path());
    if (!log_store->open_status().ok()) {
      std::fprintf(stderr, "dataflasks_server: %s\n",
                   log_store->open_status().error().message.c_str());
      return 1;
    }
    std::printf("dataflasks_server: durable store %s (%zu objects "
                "recovered)\n",
                log_store->path().c_str(), log_store->object_count());
    durable = std::move(log_store);
  }

  core::Node node(NodeId(config.id), config.capacity, rt, transport,
                  config.node_options(), rt.rng().fork(0xDF).next_u64(),
                  std::move(durable));

  // Seed-only join: each probe reply names the node id living at a seed
  // address; feed it into the PSS as a bootstrap contact and let gossip
  // learn the rest of the membership (and its addresses) from there.
  transport.set_seed_listener([&node, &log](NodeId contact) {
    log.info("seed resolved to ", to_string(contact));
    node.add_contact(contact);
  });
  for (const server::SeedSpec& seed : config.seeds) {
    transport.add_seed(seed.host, seed.port);
  }

  node.start(config.peer_ids());

  g_runtime = &rt;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  // The "ready" line is a contract: scripts (and the CI smoke test) wait
  // for it before pointing clients at the process.
  std::printf("dataflasks_server: node %llu ready on %s:%u (%zu peers, %zu "
              "seeds, %u slices)\n",
              static_cast<unsigned long long>(config.id),
              config.listen_host.c_str(), transport.local_port(),
              config.peers.size(), config.seeds.size(), config.slices);
  std::fflush(stdout);

  rt.run();

  node.crash();
  std::printf("dataflasks_server: node %llu stopped (sent=%llu "
              "delivered=%llu dropped=%llu)\n",
              static_cast<unsigned long long>(config.id),
              static_cast<unsigned long long>(transport.total_sent()),
              static_cast<unsigned long long>(transport.total_delivered()),
              static_cast<unsigned long long>(transport.total_dropped()));
  return 0;
}
