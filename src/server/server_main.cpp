// dataflasks_server: boots ONE DataFlasks node as a standalone process on a
// real-clock runtime and a UDP transport — the deployment face of the exact
// protocol code the simulator drives with thousands of in-process nodes.
//
//   $ dataflasks_server --id 0 --listen 127.0.0.1:7100
//   $ dataflasks_server --id 1 --listen 127.0.0.1:7101 --seed 127.0.0.1:7100
//
// One --seed host:port is enough to join: the seed's node id is discovered
// with a transport probe, and every other member's address arrives by
// gossip (PSS descriptors and slice adverts carry endpoints). Static
// --peer id@host:port maps still work and are pinned. Runs until
// SIGINT/SIGTERM. See src/server/config.hpp for the full flag and
// config-file reference.
#include <csignal>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "core/node.hpp"
#include "net/udp_transport.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_endpoint.hpp"
#include "runtime/real_time_runtime.hpp"
#include "server/config.hpp"
#include "store/log_store.hpp"

namespace {

dataflasks::runtime::RealTimeRuntime* g_runtime = nullptr;

void handle_signal(int) {
  // stop() is an atomic flag; the poll loop wakes on EINTR and exits.
  if (g_runtime != nullptr) g_runtime->stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dataflasks;

  std::vector<std::string> args(argv + 1, argv + argc);
  auto parsed = server::parse_server_args(args);
  if (!parsed) {
    std::fprintf(stderr, "dataflasks_server: %s\n",
                 parsed.error().message.c_str());
    std::fprintf(stderr,
                 "usage: dataflasks_server [--config FILE] [--id N] "
                 "[--listen HOST:PORT] [--advertise HOST] "
                 "[--peer ID@HOST:PORT ...] [--seed HOST:PORT|N ...] "
                 "[--capacity X] [--slices K] [--gossip-ms N] [--ae-ms N] "
                 "[--store memory|durable] [--data-dir DIR] "
                 "[--metrics-port N] [--log-level LEVEL]\n");
    return 1;
  }
  const server::ServerConfig config = std::move(parsed).value();

  if (const auto level = log_level_from_string(config.log_level)) {
    set_global_log_level(*level);
  }
  Logger log("server");

  // Each process gets its own deterministic stream: either the configured
  // seed or one derived from the node id (so a homogeneously-configured
  // fleet still gossips independently).
  const std::uint64_t seed =
      config.seed != 0 ? config.seed : 0xDF5EED00ULL + config.id;

  runtime::RealTimeRuntime rt(seed);
  net::UdpTransport::Options net_options;
  net_options.bind_host = config.listen_host;
  net_options.port = config.listen_port;
  net_options.advertise_host = config.advertise_host;
  net::UdpTransport transport(rt, net_options);
  if (!transport.local_endpoint().has_value()) {
    // Binding the wildcard without an advertise host means self-descriptors
    // carry no endpoint: peers can still reach us through configuration and
    // datagram sources, but gossip address healing is off for this node.
    log.warn("listen=", config.listen_host,
             " is not advertisable; set --advertise HOST so peers can "
             "gossip-learn this node's address");
  }
  for (const server::PeerSpec& peer : config.peers) {
    transport.add_peer(NodeId(peer.id), peer.host, peer.port);
  }

  // Durable store (--store durable): an append-only CRC'd log this process
  // recovers on restart — tombstones included, so deletes survive too.
  std::unique_ptr<store::Store> durable;
  if (config.store == server::StoreKind::kDurable) {
    auto log_store = std::make_unique<store::LogStore>(config.store_path());
    if (!log_store->open_status().ok()) {
      std::fprintf(stderr, "dataflasks_server: %s\n",
                   log_store->open_status().error().message.c_str());
      return 1;
    }
    std::printf("dataflasks_server: durable store %s (%zu objects "
                "recovered)\n",
                log_store->path().c_str(), log_store->object_count());
    durable = std::move(log_store);
  }

  core::Node node(NodeId(config.id), config.capacity, rt, transport,
                  config.node_options(), rt.rng().fork(0xDF).next_u64(),
                  std::move(durable));

  // ---- observability ----
  // One process-wide registry. The request hot path holds direct pointers
  // to its per-op counters/histograms; instantaneous health (view sizes,
  // backlogs, queue depth) is polled into gauges at render time, so a node
  // nobody scrapes pays nothing for them.
  obs::MetricsRegistry registry;
  core::OpHotMetrics hot;
  {
    const char* kOpNames[core::OpHotMetrics::kOpTypes] = {
        "put", "get", "delete", "cas", "stats"};
    for (std::size_t i = 0; i < core::OpHotMetrics::kOpTypes; ++i) {
      const std::string label = std::string("op=\"") + kOpNames[i] + "\"";
      hot.ops[i] = &registry.counter(
          "df_ops_total", label, "Operations executed by this node");
      hot.exec_us[i] = &registry.histogram(
          "df_op_exec_us", label,
          "Local per-operation execution latency (microseconds)");
    }
  }
  auto render_stats = [&]() {
    const pss::View& view = node.peer_sampling().view();
    registry.gauge("df_pss_view_size", "", "Partial-view entries held")
        .set(static_cast<double>(view.size()));
    registry.gauge("df_pss_view_capacity", "", "Partial-view capacity")
        .set(static_cast<double>(view.capacity()));
    registry
        .gauge("df_ae_backlog", "",
               "Objects requested in the latest anti-entropy exchange")
        .set(static_cast<double>(node.ae_backlog()));
    registry
        .gauge("df_handoff_backlog", "",
               "Misrouted objects buffered for re-homing")
        .set(static_cast<double>(node.requests().handoff_backlog()));
    registry.gauge("df_address_book_size", "", "Peer addresses known")
        .set(static_cast<double>(transport.peers().size()));
    registry
        .gauge("df_address_book_learned", "",
               "Gossip-learned (unpinned) peer addresses")
        .set(static_cast<double>(transport.peers().learned_count()));
    registry
        .gauge("df_runtime_queue_depth", "",
               "Events pending on the runtime loop")
        .set(static_cast<double>(rt.pending_events()));
    if (const core::AdmissionController* adm = node.admission()) {
      registry
          .gauge("df_admission_overloaded", "",
                 "1 while admission control is shedding load")
          .set(adm->overloaded() ? 1.0 : 0.0);
      registry
          .gauge("df_admission_loop_lag_us", "",
                 "Event-loop lag EWMA seen by the admission tick")
          .set(adm->lag_ewma_us());
      registry
          .gauge("df_admission_service_us", "",
                 "Smoothed per-operation service latency")
          .set(adm->service_ewma_us());
      registry
          .gauge("df_admission_inflight_estimate", "",
                 "Little's-law in-flight operation estimate")
          .set(adm->inflight_estimate());
      registry
          .gauge("df_admission_retry_after_ms", "",
                 "Retry-after hint currently sent with sheds")
          .set(static_cast<double>(adm->retry_after_ms()));
    }
    registry.gauge("df_store_objects", "", "Objects held by the data store")
        .set(static_cast<double>(node.store().object_count()));
    registry
        .gauge("df_store_value_bytes", "", "Value bytes held by the store")
        .set(static_cast<double>(node.store().value_bytes()));
    registry
        .counter("df_transport_sent_total", "", "Datagrams sent")
        .set(transport.total_sent());
    registry
        .counter("df_transport_delivered_total", "", "Datagrams delivered")
        .set(transport.total_delivered());
    registry
        .counter("df_transport_dropped_total", "", "Datagrams dropped")
        .set(transport.total_dropped());
    // The node's per-subsystem event counters ride along as one labeled
    // family, so CLI stats, UDP scrapes and HTTP scrapes all see them.
    return registry.render() +
           obs::render_node_counters(node.metrics(), "df_node_events_total");
  };
  node.set_op_metrics(&hot);
  node.set_stats_provider(render_stats);       // Operation::stats() admin op
  transport.set_stats_provider(render_stats);  // kStatsRequest UDP frames
  // Admission control reads the loop's queue depth through the same probe
  // the df_runtime_queue_depth gauge polls.
  node.set_load_probe([&rt]() { return rt.pending_events(); });

  // Seed-only join: each probe reply names the node id living at a seed
  // address; feed it into the PSS as a bootstrap contact and let gossip
  // learn the rest of the membership (and its addresses) from there.
  transport.set_seed_listener([&node, &log](NodeId contact) {
    log.info("seed resolved to ", to_string(contact));
    node.add_contact(contact);
  });
  for (const server::SeedSpec& seed : config.seeds) {
    transport.add_seed(seed.host, seed.port);
  }

  node.start(config.peer_ids());

  // Optional plain-TCP Prometheus endpoint (--metrics-port; 0 = ephemeral).
  // Printed before the ready line so scripts can parse both in one pass.
  std::optional<obs::MetricsTcpEndpoint> metrics_endpoint;
  if (config.metrics_port >= 0) {
    metrics_endpoint.emplace(
        rt, config.listen_host,
        static_cast<std::uint16_t>(config.metrics_port), render_stats);
    std::printf("dataflasks_server: node %llu metrics on %s:%u\n",
                static_cast<unsigned long long>(config.id),
                config.listen_host.c_str(), metrics_endpoint->port());
  }

  g_runtime = &rt;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  // The "ready" line is a contract: scripts (and the CI smoke test) wait
  // for it before pointing clients at the process.
  std::printf("dataflasks_server: node %llu ready on %s:%u (%zu peers, %zu "
              "seeds, %u slices)\n",
              static_cast<unsigned long long>(config.id),
              config.listen_host.c_str(), transport.local_port(),
              config.peers.size(), config.seeds.size(), config.slices);
  std::fflush(stdout);

  rt.run();

  node.crash();
  std::printf("dataflasks_server: node %llu stopped (sent=%llu "
              "delivered=%llu dropped=%llu)\n",
              static_cast<unsigned long long>(config.id),
              static_cast<unsigned long long>(transport.total_sent()),
              static_cast<unsigned long long>(transport.total_delivered()),
              static_cast<unsigned long long>(transport.total_dropped()));
  return 0;
}
