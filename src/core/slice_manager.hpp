// Slice Manager (paper §V, Fig. 2): owns the slicing protocol instance,
// the intra-slice view and the advertisement gossip that feeds it. The rest
// of the node asks it three questions: which slice am I in, which slice
// does this key map to, and who else is in my slice.
#pragma once

#include <functional>
#include <memory>

#include "common/rng.hpp"
#include "core/intra_slice_view.hpp"
#include "core/messages.hpp"
#include "net/transport.hpp"
#include "pss/peer_sampling.hpp"
#include "slicing/slicer.hpp"

namespace dataflasks::core {

struct SliceManagerOptions {
  IntraSliceViewOptions view;
  std::size_t advert_fanout = 2;  ///< peers advertised to per advert tick
};

class SliceManager {
 public:
  using SliceChangeListener =
      std::function<void(SliceId from, SliceId to)>;
  using ConfigChangeListener =
      std::function<void(const slicing::SliceConfig&)>;

  SliceManager(NodeId self, net::Transport& transport,
               pss::PeerSampling& pss, std::unique_ptr<slicing::Slicer> slicer,
               Rng rng, SliceManagerOptions options);

  /// One slicing-protocol gossip cycle.
  void tick_slicing() { slicer_->tick(); }

  /// One advertisement cycle: age the view and gossip our (id, slice).
  void tick_advertisement();

  /// Consumes slicing and advertisement messages.
  bool handle(const net::Message& msg);

  [[nodiscard]] SliceId slice() const { return slicer_->slice(); }
  [[nodiscard]] const slicing::SliceConfig& config() const {
    return slicer_->config();
  }
  [[nodiscard]] SliceId key_slice(const Key& key) const {
    return slicing::key_to_slice(key, config().slice_count);
  }
  [[nodiscard]] double rank_estimate() const {
    return slicer_->rank_estimate();
  }

  [[nodiscard]] std::vector<NodeId> slice_peers(std::size_t count) {
    return view_.peers(count);
  }
  [[nodiscard]] std::vector<NodeId> all_slice_peers() const {
    return view_.all_peers();
  }
  [[nodiscard]] std::optional<NodeId> directory_lookup(SliceId slice) const {
    return view_.directory_lookup(slice);
  }
  [[nodiscard]] const IntraSliceView& view() const { return view_; }

  /// Adopts a (possibly newer) slice configuration.
  void adopt_config(const slicing::SliceConfig& config) {
    slicer_->adopt_config(config);
  }

  /// Learns a peer's slice opportunistically (e.g. from request traffic).
  void observe_peer(NodeId node, SliceId slice) {
    view_.observe(node, slice, this->slice());
  }

  void forget_peer(NodeId node) { view_.forget(node); }

  void set_slice_change_listener(SliceChangeListener listener);
  void set_config_change_listener(ConfigChangeListener listener) {
    config_listener_ = std::move(listener);
  }

  [[nodiscard]] slicing::Slicer& slicer() { return *slicer_; }

 private:
  [[nodiscard]] Payload encode_advert() const;
  void send_advert(NodeId to, const Payload& advert);

  NodeId self_;
  net::Transport& transport_;
  pss::PeerSampling& pss_;
  std::unique_ptr<slicing::Slicer> slicer_;
  Rng rng_;
  SliceManagerOptions options_;
  IntraSliceView view_;
  SliceChangeListener slice_listener_;
  ConfigChangeListener config_listener_;
  slicing::SliceConfig last_seen_config_;
};

}  // namespace dataflasks::core
