// Slice state transfer (paper §VII: "when a node joins a certain slice,
// mechanisms for efficient state transfer must be devised"). When a node
// joins or changes slice it pulls a cursor-paged snapshot of the slice's
// data from a member, then drops objects that no longer belong to it.
// Paging bounds per-message size so the system never stalls on bulk copy —
// the paper's worry about "the majority of the system concerned with state
// transfer" is addressed by rate-limiting to one page per tick.
#pragma once

#include <functional>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "core/messages.hpp"
#include "net/transport.hpp"
#include "store/store.hpp"

namespace dataflasks::core {

struct StateTransferOptions {
  std::size_t page_size = 64;  ///< objects per snapshot page (UDP)
  /// Ticks without progress before the transfer retries with another peer.
  std::uint32_t stall_ticks = 3;
  /// When the transport reports a stream-sized payload budget for the
  /// requester, the donor answers one request with up to this many pages
  /// (each sized against the stream budget, every page but the last marked
  /// `continues`). UDP requesters always get exactly one page per request.
  std::size_t stream_burst_pages = 4;
  /// Object-count bound multiplier for stream pages: the byte budget is the
  /// real limit there, but nth_element cost still wants a count cap.
  std::size_t stream_page_scale = 16;
};

class StateTransfer {
 public:
  using SliceFn = std::function<SliceId()>;
  using KeySliceFn = std::function<SliceId(const Key&)>;
  using SlicePeersFn = std::function<std::vector<NodeId>(std::size_t)>;
  using CompletionFn = std::function<void(SliceId slice)>;

  StateTransfer(NodeId self, net::Transport& transport, store::Store& store,
                Rng rng, StateTransferOptions options, SliceFn my_slice,
                KeySliceFn key_slice, SlicePeersFn slice_peers,
                MetricsRegistry& metrics);

  /// Starts (or restarts) a transfer into the current slice.
  void begin();

  /// Drives retries; call periodically.
  void tick();

  /// Consumes kStRequest / kStReply messages.
  bool handle(const net::Message& msg);

  [[nodiscard]] bool active() const { return active_; }

  /// Invoked when a transfer completes (all pages received).
  void set_completion_listener(CompletionFn fn) { on_complete_ = std::move(fn); }

 private:
  void request_page();
  void handle_request(const net::Message& msg, const StRequest& request);
  /// Builds one page strictly after `cursor` within `byte_budget` /
  /// `count_limit`; advances `cursor` to the last entry examined-and-shipped
  /// and reports via `more` whether unshipped entries remain.
  [[nodiscard]] StReply build_page(SliceId slice, store::DigestEntry& cursor,
                                   std::size_t byte_budget,
                                   std::size_t count_limit, bool& more);
  void handle_reply(const StReply& reply);

  NodeId self_;
  net::Transport& transport_;
  store::Store& store_;
  Rng rng_;
  StateTransferOptions options_;
  SliceFn my_slice_;
  KeySliceFn key_slice_;
  SlicePeersFn slice_peers_;
  MetricsRegistry& metrics_;
  CompletionFn on_complete_;

  bool active_ = false;
  SliceId target_slice_ = 0;
  store::DigestEntry cursor_;
  std::uint32_t ticks_without_progress_ = 0;
  bool progressed_since_tick_ = false;
};

}  // namespace dataflasks::core
