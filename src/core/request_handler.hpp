// Request Handler (paper §V, Fig. 2): "responsible for dealing with requests
// made to the node. It knows to which slice the node belongs to from the
// Slice Manager and stores and retrieves correspondent data to and from the
// Data Store."
//
// Operation API: clients send OpEnvelope batches; the contact node groups
// the ops by target slice and sprays each group as one unit, so a batch of
// N costs one client round-trip and (per slice touched) one epidemic
// dissemination instead of N.
//
// Put/delete path: the first slice member reached stores the object (a
// tombstone for deletes), acks the client in a batched reply, and pushes
// immediate copies of everything it stored to a few slice-mates in one
// message; full-slice replication then converges via anti-entropy.
//
// Get path: members holding the requested version reply directly to the
// client (the client deduplicates multiple replies, paper §V). Gets this
// member cannot serve keep spreading inside the slice: a pure-read batch
// relays as-is, while a mixed batch stops and re-sprays only its unserved
// gets (so relaying never re-executes the batch's writes).
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <memory>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "core/admission_controller.hpp"
#include "core/messages.hpp"
#include "core/slice_manager.hpp"
#include "dissemination/spray_router.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "store/store.hpp"

namespace dataflasks::core {

/// Optional hot-path instrumentation: per-op-type execution counters and
/// latency histograms, pointing into an obs::MetricsRegistry owned by the
/// embedder (the server wires one up; tests and sims usually don't). Null
/// entries are skipped, so an uninstrumented node pays one branch per op.
struct OpHotMetrics {
  static constexpr std::size_t kOpTypes = 5;
  static constexpr std::size_t index(OpType type) {
    return static_cast<std::size_t>(type) - 1;
  }
  std::array<obs::Counter*, kOpTypes> ops{};
  std::array<obs::LatencyHistogram*, kOpTypes> exec_us{};
};

struct RequestHandlerOptions {
  /// Slice-mates receiving an immediate copy of each fresh write (in
  /// addition to the storing member). Anti-entropy completes the slice.
  std::size_t direct_replication = 3;
  dissemination::SprayOptions spray;
  /// Coverage multiplier for the adaptive TTL: a spray aims to reach
  /// ~beta * slice_count nodes, giving P(miss slice) <= e^-beta.
  double ttl_beta = 3.0;
  /// Hinted handoff: replica pushes that arrive at a node outside the
  /// object's slice are buffered and re-homed to the right slice instead
  /// of being dropped (paper §VII: replica maintenance under slice
  /// changes). Directory contacts make re-homing one unicast.
  bool hinted_handoff = true;
  std::size_t handoff_capacity = 256;   ///< buffered misrouted objects
  std::size_t handoff_per_tick = 16;    ///< re-homed per maintenance tick
  /// Operation-API protocol this node serves. An envelope at any other
  /// version is answered with an explicit kVersionMismatch naming the
  /// served version, so clients renegotiate instead of timing out.
  std::uint8_t serve_protocol = kOpProtocolVersion;
};

class RequestHandler {
 public:
  /// Local clock, used to stamp tombstones at the first storing replica.
  using ClockFn = std::function<SimTime()>;
  /// Renders this node's stats snapshot (Prometheus text); serves the
  /// Operation::stats() admin op at the contact node.
  using StatsFn = std::function<std::string()>;

  RequestHandler(NodeId self, net::Transport& transport,
                 pss::PeerSampling& pss, SliceManager& slices,
                 store::Store& store, Rng rng, ClockFn clock,
                 RequestHandlerOptions options, MetricsRegistry& metrics);

  /// Consumes kOpEnvelope / kReplicatePush and spray messages.
  bool handle(const net::Message& msg);

  /// Recomputes the spray TTL for a new slice count (config change).
  void on_config_changed(const slicing::SliceConfig& config);

  /// Periodic maintenance: re-homes buffered misrouted objects and a
  /// bounded batch of foreign keys found in the local store.
  void tick_maintenance();

  /// Shard-group door: sprays `ops` toward `target` exactly as an envelope
  /// group would travel (budget-chunked, one spray unit per chunk). Shard
  /// executors use it for gets they could not serve from their partition;
  /// the respray relays into the slice from shard 0. Runtime-thread only.
  void spray_ops(SliceId target, std::vector<RoutedOp> ops);


  [[nodiscard]] const dissemination::SprayOptions& spray_options() const {
    return router_->options();
  }
  [[nodiscard]] std::size_t handoff_backlog() const {
    return handoff_.size();
  }

  void set_stats_provider(StatsFn fn) { stats_fn_ = std::move(fn); }
  /// Clock used to stamp TTL deadlines (`expires_at`). Must be comparable
  /// across processes (wall time), unlike `clock` which may be a per-process
  /// steady clock; defaults to `clock` (correct for the simulator, where
  /// one clock serves every node).
  void set_wall_clock(ClockFn fn) {
    wall_ = fn ? std::move(fn) : clock_;
  }
  /// `hot` must outlive this handler (it points into the embedder's
  /// registry); pass nullptr to detach.
  void set_hot_metrics(const OpHotMetrics* hot) { hot_ = hot; }
  /// Admission control for client work: overloaded nodes answer envelopes
  /// and sprayed deliveries with an explicit kOverloaded frame instead of
  /// executing them (stats ops stay served). `admission` must outlive this
  /// handler; nullptr detaches (everything admitted).
  void set_admission(AdmissionController* admission) {
    admission_ = admission;
  }

 private:
  dissemination::DeliverResult deliver(const Payload& payload, SliceId target,
                                       NodeId origin);
  dissemination::DeliverResult handle_ops_delivery(const OpsRequest& ops,
                                                   SliceId target);
  void handle_envelope(const OpEnvelope& envelope);
  void store_replicated(store::Object object);
  void spray_or_deliver(SliceId target, Payload inner);
  void buffer_handoff(store::Object object);
  void note_op(OpType type, SimTime started);
  /// True when admission control shed the client ops (an OverloadReply
  /// was sent to `first`'s client); the caller must not execute them.
  bool shed_client_ops(const RoutedOp& first, std::size_t op_count,
                       const char* shed_counter);

  NodeId self_;
  net::Transport& transport_;
  SliceManager& slices_;
  store::Store& store_;
  Rng rng_;
  ClockFn clock_;
  ClockFn wall_;
  RequestHandlerOptions options_;
  MetricsRegistry& metrics_;
  StatsFn stats_fn_;
  const OpHotMetrics* hot_ = nullptr;
  AdmissionController* admission_ = nullptr;
  std::unique_ptr<dissemination::SprayRouter> router_;
  std::deque<store::Object> handoff_;
  /// Each (key, version) is re-homed at most once per node incarnation;
  /// anti-entropy backstops anything lost after that.
  dissemination::DedupCache resprayed_{1 << 12};
};

}  // namespace dataflasks::core
