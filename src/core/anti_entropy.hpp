// Intra-slice anti-entropy: periodic exchange with a random slice-mate,
// pulling whatever the partner has that we miss. This is our resolution of
// the paper's open problem of "maintaining replication level in face of
// churn or faults" (§VII): every object eventually reaches every live
// member of its slice.
//
// Two protocols share the pull/push legs:
//
//  - Legacy per-key digests (kAeDigest): the sender ships every
//    (key, version) it holds — O(keyspace) bytes per round even between
//    perfectly converged replicas. Still used for small stores (a digest
//    under a few hundred entries is cheaper than a summary) and kept as a
//    handler forever so mixed fleets interoperate.
//
//  - O(diff) summaries (kAeSummary → kAeBucketDigest): round 1 ships a
//    fixed-size array of per-bucket XOR fingerprints; converged replicas
//    stop there. Only buckets whose fingerprints disagree fall back to
//    per-key entries (round 2), so bytes scale with the difference, not
//    the keyspace. Fingerprints are rebuilt only when the store's
//    mutation_rev changes (cached otherwise).
#pragma once

#include <functional>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "core/messages.hpp"
#include "net/transport.hpp"
#include "store/store.hpp"

namespace dataflasks::core {

struct AntiEntropyOptions {
  std::size_t digest_cap = 512;   ///< max digest entries per message
  std::size_t push_cap = 128;     ///< max objects per push message
  /// Initiate rounds with the O(diff) summary protocol. Off = legacy
  /// per-key digests (both sides still *answer* either protocol).
  bool summary_protocol = true;
  /// Stores smaller than this initiate with the legacy digest even when
  /// summaries are on: below it the full digest fits in fewer bytes than a
  /// summary worth comparing.
  std::size_t summary_min_entries = 64;
};

class AntiEntropy {
 public:
  using SliceFn = std::function<SliceId()>;
  using KeySliceFn = std::function<SliceId(const Key&)>;
  using SlicePeersFn = std::function<std::vector<NodeId>(std::size_t)>;

  AntiEntropy(NodeId self, net::Transport& transport, store::Store& store,
              Rng rng, AntiEntropyOptions options, SliceFn my_slice,
              KeySliceFn key_slice, SlicePeersFn slice_peers,
              MetricsRegistry& metrics);

  /// One anti-entropy round: summary (or digest) to one random slice-mate.
  void tick();

  /// Consumes kAeDigest / kAeSummary / kAeBucketDigest / kAePull / kAePush.
  bool handle(const net::Message& msg);

  /// Entries this node asked to pull in the most recent digest exchange —
  /// an instantaneous measure of how far behind its slice this replica is
  /// (0 = converged at last contact). Exported as an observability gauge.
  [[nodiscard]] std::size_t last_pull_backlog() const {
    return last_pull_backlog_;
  }

 private:
  /// Slice-filtered bucket fingerprints, rebuilt only when the store or
  /// bucketing changes. XOR folding keeps the build one O(n) pass.
  struct SummaryState {
    std::uint64_t rev = 0;
    SliceId slice = 0;
    std::uint32_t bucket_count = 0;
    std::uint64_t entry_count = 0;
    std::vector<std::uint64_t> fingerprints;
    bool valid = false;
  };

  void send_digest(NodeId to, bool is_reply);
  void send_summary(NodeId to);
  void handle_digest(const net::Message& msg, const AeDigest& digest);
  void handle_summary(const net::Message& msg, const AeSummary& summary);
  void handle_bucket_digest(const net::Message& msg,
                            const AeBucketDigest& digest);
  void handle_pull(const net::Message& msg, const AePull& pull);
  void handle_push(const AePush& push);

  /// Pulls the entries we miss (slice-filtered, tombstone-aware); shared by
  /// the legacy digest leg and the summary protocol's round 2.
  void pull_missing(NodeId from, const std::vector<store::DigestEntry>& entries);
  /// (Re)computes fingerprints for `bucket_count` buckets over this node's
  /// slice-local entries; returns the cached state.
  const SummaryState& summary_state(std::uint32_t bucket_count);
  /// This node's slice-local entries hashing into any of `buckets`.
  [[nodiscard]] std::vector<store::DigestEntry> entries_in_buckets(
      std::uint32_t bucket_count, const std::vector<std::uint32_t>& buckets);
  void send(NodeId to, std::uint16_t type, Payload payload);

  NodeId self_;
  net::Transport& transport_;
  store::Store& store_;
  Rng rng_;
  AntiEntropyOptions options_;
  SliceFn my_slice_;
  KeySliceFn key_slice_;
  SlicePeersFn slice_peers_;
  MetricsRegistry& metrics_;
  std::size_t last_pull_backlog_ = 0;
  SummaryState summary_;
};

}  // namespace dataflasks::core
