// Intra-slice anti-entropy: periodic digest exchange with a random
// slice-mate, pulling whatever the partner has that we miss. This is our
// resolution of the paper's open problem of "maintaining replication level
// in face of churn or faults" (§VII): every object eventually reaches every
// live member of its slice, with batched, constant-per-cycle message cost.
#pragma once

#include <functional>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "core/messages.hpp"
#include "net/transport.hpp"
#include "store/store.hpp"

namespace dataflasks::core {

struct AntiEntropyOptions {
  std::size_t digest_cap = 512;   ///< max digest entries per message
  std::size_t push_cap = 128;     ///< max objects per push message
};

class AntiEntropy {
 public:
  using SliceFn = std::function<SliceId()>;
  using KeySliceFn = std::function<SliceId(const Key&)>;
  using SlicePeersFn = std::function<std::vector<NodeId>(std::size_t)>;

  AntiEntropy(NodeId self, net::Transport& transport, store::Store& store,
              Rng rng, AntiEntropyOptions options, SliceFn my_slice,
              KeySliceFn key_slice, SlicePeersFn slice_peers,
              MetricsRegistry& metrics);

  /// One anti-entropy round: send our digest to one random slice-mate.
  void tick();

  /// Consumes kAeDigest / kAePull / kAePush messages.
  bool handle(const net::Message& msg);

  /// Entries this node asked to pull in the most recent digest exchange —
  /// an instantaneous measure of how far behind its slice this replica is
  /// (0 = converged at last contact). Exported as an observability gauge.
  [[nodiscard]] std::size_t last_pull_backlog() const {
    return last_pull_backlog_;
  }

 private:
  void send_digest(NodeId to, bool is_reply);
  void handle_digest(const net::Message& msg, const AeDigest& digest);
  void handle_pull(const net::Message& msg, const AePull& pull);
  void handle_push(const AePush& push);

  NodeId self_;
  net::Transport& transport_;
  store::Store& store_;
  Rng rng_;
  AntiEntropyOptions options_;
  SliceFn my_slice_;
  KeySliceFn key_slice_;
  SlicePeersFn slice_peers_;
  MetricsRegistry& metrics_;
  std::size_t last_pull_backlog_ = 0;
};

}  // namespace dataflasks::core
