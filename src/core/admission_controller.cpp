#include "core/admission_controller.hpp"

#include <algorithm>

#include "common/ensure.hpp"

namespace dataflasks::core {

namespace {

// EWMA weight for new observations: heavy enough to track a saturation
// onset within a few ticks, light enough that one slow op does not flip
// the node into overload.
constexpr double kEwmaAlpha = 0.3;

}  // namespace

AdmissionController::AdmissionController(ClockFn clock,
                                         AdmissionOptions options,
                                         MetricsRegistry& metrics)
    : clock_(std::move(clock)), options_(options), metrics_(metrics) {
  ensure(clock_ != nullptr, "AdmissionController: clock required");
  trickle_tokens_ = static_cast<double>(options_.maintenance_trickle_per_sec);
  window_start_ = clock_();
}

std::uint32_t AdmissionController::retry_after_ms() const {
  // Scale the hint with how far past the lag watermark the node sits, so
  // clients back off harder the deeper the saturation. Clamped to the
  // configured bounds; client-side jitter spreads the retries.
  double severity = 1.0;
  if (options_.lag_high > 0) {
    severity = std::max(
        severity, lag_ewma_us_ / static_cast<double>(options_.lag_high));
  }
  if (options_.queue_high > 0 && queue_depth_ > 0) {
    severity = std::max(severity,
                        static_cast<double>(queue_depth_) /
                            static_cast<double>(options_.queue_high));
  }
  const double hint =
      static_cast<double>(options_.retry_after_min_ms) * severity;
  return static_cast<std::uint32_t>(
      std::clamp(hint, static_cast<double>(options_.retry_after_min_ms),
                 static_cast<double>(options_.retry_after_max_ms)));
}

AdmissionController::Decision AdmissionController::admit(WorkClass cls,
                                                         std::size_t ops) {
  if (!options_.enabled) return Decision{true, 0};

  switch (cls) {
    case WorkClass::kAdmin:
      // A saturated node must stay observable: stats/admin always lands.
      metrics_.counter("admission.admin_admitted").add(ops);
      return Decision{true, 0};

    case WorkClass::kClientOp:
      if (overloaded_) {
        metrics_.counter("admission.client_ops_shed").add(ops);
        return Decision{false, retry_after_ms()};
      }
      admitted_in_window_ += ops;
      metrics_.counter("admission.client_ops_admitted").add(ops);
      return Decision{true, 0};

    case WorkClass::kMaintenance:
      if (!overloaded_) {
        metrics_.counter("admission.maintenance_admitted").add(ops);
        return Decision{true, 0};
      }
      // Guaranteed trickle: gossip and anti-entropy keep converging even
      // while client work is shed, just at a bounded rate.
      if (trickle_tokens_ >= 1.0) {
        trickle_tokens_ -= 1.0;
        metrics_.counter("admission.maintenance_trickle").add(ops);
        return Decision{true, 0};
      }
      metrics_.counter("admission.maintenance_shed").add(ops);
      return Decision{false, retry_after_ms()};
  }
  return Decision{true, 0};
}

void AdmissionController::note_service(SimTime elapsed_us, std::size_t ops) {
  if (!options_.enabled || ops == 0) return;
  const double per_op =
      static_cast<double>(elapsed_us < 0 ? 0 : elapsed_us) /
      static_cast<double>(ops);
  service_ewma_us_ = service_ewma_us_ == 0.0
                         ? per_op
                         : (1.0 - kEwmaAlpha) * service_ewma_us_ +
                               kEwmaAlpha * per_op;
}

void AdmissionController::tick() {
  if (!options_.enabled) return;
  const SimTime now = clock_();

  // Loop lag: how late this tick fired relative to its schedule. On a
  // saturated poll loop, timers starve behind datagram processing and the
  // lag climbs; in virtual time it is exactly zero.
  const SimTime lag =
      expected_tick_ > 0 && now > expected_tick_ ? now - expected_tick_ : 0;
  lag_ewma_us_ = (1.0 - kEwmaAlpha) * lag_ewma_us_ +
                 kEwmaAlpha * static_cast<double>(lag);
  expected_tick_ = now + options_.tick_period;

  queue_depth_ = probe_ ? probe_() : 0;

  // Little's law: concurrent in-flight work ~= arrival rate x service
  // time. Uses the admitted-op rate over the closing window.
  const SimTime window = now - window_start_;
  if (window > 0) {
    const double rate_per_us =
        static_cast<double>(admitted_in_window_) / static_cast<double>(window);
    inflight_estimate_ = rate_per_us * service_ewma_us_;
  }
  admitted_in_window_ = 0;
  window_start_ = now;

  // Refill the maintenance trickle (bounded burst of one second's worth).
  if (window > 0) {
    const double refill =
        static_cast<double>(options_.maintenance_trickle_per_sec) *
        static_cast<double>(window) / 1e6;
    trickle_tokens_ =
        std::min(trickle_tokens_ + refill,
                 static_cast<double>(options_.maintenance_trickle_per_sec));
  }

  evaluate(now);
}

void AdmissionController::evaluate(SimTime /*now*/) {
  const bool lag_high =
      options_.lag_high > 0 &&
      lag_ewma_us_ > static_cast<double>(options_.lag_high);
  const bool queue_high =
      options_.queue_high > 0 && queue_depth_ > options_.queue_high;
  const bool inflight_high =
      options_.max_inflight_ops > 0 &&
      inflight_estimate_ > static_cast<double>(options_.max_inflight_ops);

  if (!overloaded_) {
    if (lag_high || queue_high || inflight_high) {
      overloaded_ = true;
      metrics_.counter("admission.overload_entered").add();
    }
    return;
  }

  // Hysteresis: leave only when EVERY signal is back under its low
  // watermark, so the state does not flap at the boundary.
  const bool lag_low =
      options_.lag_high == 0 ||
      lag_ewma_us_ <= static_cast<double>(options_.lag_low);
  const bool queue_low =
      options_.queue_high == 0 || queue_depth_ <= options_.queue_low;
  const bool inflight_low =
      options_.max_inflight_ops == 0 ||
      inflight_estimate_ <=
          0.7 * static_cast<double>(options_.max_inflight_ops);
  if (lag_low && queue_low && inflight_low) {
    overloaded_ = false;
    metrics_.counter("admission.overload_exited").add();
  }
}

}  // namespace dataflasks::core
