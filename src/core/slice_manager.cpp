#include "core/slice_manager.hpp"

namespace dataflasks::core {

SliceManager::SliceManager(NodeId self, net::Transport& transport,
                           pss::PeerSampling& pss,
                           std::unique_ptr<slicing::Slicer> slicer, Rng rng,
                           SliceManagerOptions options)
    : self_(self),
      transport_(transport),
      pss_(pss),
      slicer_(std::move(slicer)),
      rng_(rng),
      options_(options),
      view_(self, options.view, rng_.fork(0x51ce)),
      last_seen_config_(slicer_->config()) {
  ensure(slicer_ != nullptr, "SliceManager: null slicer");
}

void SliceManager::set_slice_change_listener(SliceChangeListener listener) {
  slice_listener_ = std::move(listener);
  slicer_->set_slice_change_listener(
      [this](SliceId from, SliceId to) {
        // Our old slice view is useless in the new slice.
        view_.reset_slice_entries();
        if (slice_listener_) slice_listener_(from, to);
      });
}

void SliceManager::tick_advertisement() {
  view_.tick();

  // Detect config changes made by the slicer (epidemic adoption) so the
  // owner can react (e.g. recompute spray TTL).
  if (!(last_seen_config_ == slicer_->config())) {
    last_seen_config_ = slicer_->config();
    if (config_listener_) config_listener_(last_seen_config_);
  }

  // One advert encoding per cycle; every recipient shares the buffer.
  const Payload advert = encode_advert();
  for (const NodeId peer : pss_.sample_peers(options_.advert_fanout)) {
    send_advert(peer, advert);
  }
  // Also refresh known slice-mates directly: keeps the intra-slice overlay
  // connected even when PSS samples rarely land in our own slice (large k).
  for (const NodeId peer : view_.peers(1)) {
    send_advert(peer, advert);
  }
}

Payload SliceManager::encode_advert() const {
  return encode(SliceAdvert{self_, slice(), slicer_->config(),
                            transport_.local_endpoint()});
}

void SliceManager::send_advert(NodeId to, const Payload& advert) {
  if (to == self_) return;
  transport_.send(net::Message{self_, to, kSliceAdvert, advert});
}

bool SliceManager::handle(const net::Message& msg) {
  if (slicer_->handle(msg)) return true;
  if (msg.type != kSliceAdvert) return false;

  const auto advert = decode_slice_advert(msg.payload);
  if (!advert) return true;  // malformed: drop

  // Adverts double as address gossip: maintenance traffic keeps routing
  // fresh even for peers the PSS rarely samples.
  if (advert->endpoint.has_value() && advert->node != self_) {
    transport_.learn_endpoint(advert->node, *advert->endpoint);
  }

  slicer_->adopt_config(advert->config);
  view_.observe(advert->node, advert->slice, slice());

  // Answer first-contact adverts from same-slice peers so both sides learn
  // each other quickly (symmetric intra-slice links).
  if (advert->slice == slice() && advert->node != self_ && view_.size() > 0 &&
      rng_.next_bernoulli(0.25)) {
    send_advert(advert->node, encode_advert());
  }
  return true;
}

}  // namespace dataflasks::core
