#include "core/intra_slice_view.hpp"

#include <algorithm>

#include "common/ensure.hpp"

namespace dataflasks::core {

IntraSliceView::IntraSliceView(NodeId self, IntraSliceViewOptions options,
                               Rng rng)
    : self_(self), options_(options), rng_(rng) {
  ensure(options_.capacity > 0, "IntraSliceView: zero capacity");
}

void IntraSliceView::observe(NodeId node, SliceId slice, SliceId my_slice) {
  if (node == self_) return;

  if (slice == my_slice) {
    auto it = members_.find(node);
    if (it != members_.end()) {
      it->second.last_seen = tick_count_;  // refresh: membership unchanged
      return;
    }
    member_list_dirty_ = true;
    if (members_.size() >= options_.capacity) {
      // Evict the stalest member to make room; fresh information wins.
      auto victim = members_.begin();
      for (auto mit = members_.begin(); mit != members_.end(); ++mit) {
        if (mit->second.last_seen < victim->second.last_seen) victim = mit;
      }
      members_.erase(victim);
    }
    members_[node] = MemberEntry{tick_count_};
    // The node may have moved into our slice; drop any directory entry.
    for (auto dit = directory_.begin(); dit != directory_.end();) {
      if (dit->second.node == node) {
        dit = directory_.erase(dit);
      } else {
        ++dit;
      }
    }
    return;
  }

  // Other slice: refresh the directory. A node that moved out of our slice
  // must also leave the member set.
  if (members_.erase(node) > 0) member_list_dirty_ = true;
  const auto it = directory_.find(slice);
  if (it == directory_.end() &&
      directory_.size() >= options_.directory_capacity) {
    // Evict the stalest directory slice.
    auto victim = directory_.begin();
    for (auto dit = directory_.begin(); dit != directory_.end(); ++dit) {
      if (dit->second.last_seen < victim->second.last_seen) victim = dit;
    }
    directory_.erase(victim);
  }
  directory_[slice] = DirectoryEntry{node, tick_count_};
}

void IntraSliceView::tick() {
  // Expiry compares last-seen tick stamps (refreshing an entry is a stamp
  // write, not a whole-view aging pass). The sweep itself stays per-tick:
  // dissemination and replication target these peers, so stale members
  // must leave the view promptly after failures.
  ++tick_count_;
  for (auto it = members_.begin(); it != members_.end();) {
    if (tick_count_ - it->second.last_seen > options_.max_entry_age) {
      member_list_dirty_ = true;
      it = members_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = directory_.begin(); it != directory_.end();) {
    if (tick_count_ - it->second.last_seen > options_.max_entry_age) {
      it = directory_.erase(it);
    } else {
      ++it;
    }
  }
}

void IntraSliceView::reset_slice_entries() {
  members_.clear();
  member_list_.clear();
  member_list_dirty_ = false;
}

std::vector<NodeId> IntraSliceView::peers(std::size_t count) {
  refresh_member_list();
  return rng_.sample(member_list_, count);
}

std::vector<NodeId> IntraSliceView::all_peers() const {
  refresh_member_list();
  return member_list_;
}

void IntraSliceView::refresh_member_list() const {
  if (!member_list_dirty_ && member_list_.size() == members_.size()) return;
  member_list_.clear();
  member_list_.reserve(members_.size());
  for (const auto& [node, _] : members_) member_list_.push_back(node);
  // Deterministic base order (hash maps iterate arbitrarily); sampling
  // re-randomizes with the node's own stream.
  std::sort(member_list_.begin(), member_list_.end());
  member_list_dirty_ = false;
}

std::optional<NodeId> IntraSliceView::directory_lookup(SliceId slice) const {
  const auto it = directory_.find(slice);
  if (it == directory_.end()) return std::nullopt;
  return it->second.node;
}

void IntraSliceView::forget(NodeId node) {
  if (members_.erase(node) > 0) member_list_dirty_ = true;
  for (auto it = directory_.begin(); it != directory_.end();) {
    if (it->second.node == node) {
      it = directory_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace dataflasks::core
