#include "core/intra_slice_view.hpp"

#include <algorithm>

#include "common/ensure.hpp"

namespace dataflasks::core {

IntraSliceView::IntraSliceView(NodeId self, IntraSliceViewOptions options,
                               Rng rng)
    : self_(self), options_(options), rng_(rng) {
  ensure(options_.capacity > 0, "IntraSliceView: zero capacity");
}

void IntraSliceView::observe(NodeId node, SliceId slice, SliceId my_slice) {
  if (node == self_) return;

  if (slice == my_slice) {
    auto it = members_.find(node);
    if (it != members_.end()) {
      it->second.age = 0;
      return;
    }
    if (members_.size() >= options_.capacity) {
      // Evict the oldest member to make room; fresh information wins.
      auto victim = members_.begin();
      for (auto mit = members_.begin(); mit != members_.end(); ++mit) {
        if (mit->second.age > victim->second.age) victim = mit;
      }
      members_.erase(victim);
    }
    members_[node] = MemberEntry{0};
    // The node may have moved into our slice; drop any directory entry.
    for (auto dit = directory_.begin(); dit != directory_.end();) {
      if (dit->second.node == node) {
        dit = directory_.erase(dit);
      } else {
        ++dit;
      }
    }
    return;
  }

  // Other slice: refresh the directory. A node that moved out of our slice
  // must also leave the member set.
  members_.erase(node);
  const auto it = directory_.find(slice);
  if (it == directory_.end() && directory_.size() >= options_.directory_capacity) {
    // Evict the oldest directory slice.
    auto victim = directory_.begin();
    for (auto dit = directory_.begin(); dit != directory_.end(); ++dit) {
      if (dit->second.age > victim->second.age) victim = dit;
    }
    directory_.erase(victim);
  }
  directory_[slice] = DirectoryEntry{node, 0};
}

void IntraSliceView::tick() {
  for (auto it = members_.begin(); it != members_.end();) {
    if (++it->second.age > options_.max_entry_age) {
      it = members_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = directory_.begin(); it != directory_.end();) {
    if (++it->second.age > options_.max_entry_age) {
      it = directory_.erase(it);
    } else {
      ++it;
    }
  }
}

void IntraSliceView::reset_slice_entries() { members_.clear(); }

std::vector<NodeId> IntraSliceView::peers(std::size_t count) {
  std::vector<NodeId> all = all_peers();
  return rng_.sample(all, count);
}

std::vector<NodeId> IntraSliceView::all_peers() const {
  std::vector<NodeId> out;
  out.reserve(members_.size());
  for (const auto& [node, _] : members_) out.push_back(node);
  // Deterministic base order (hash maps iterate arbitrarily); sampling
  // re-randomizes with the node's own stream.
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<NodeId> IntraSliceView::directory_lookup(SliceId slice) const {
  const auto it = directory_.find(slice);
  if (it == directory_.end()) return std::nullopt;
  return it->second.node;
}

void IntraSliceView::forget(NodeId node) {
  members_.erase(node);
  for (auto it = directory_.begin(); it != directory_.end();) {
    if (it->second.node == node) {
      it = directory_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace dataflasks::core
