// Admission control and load shedding: makes overload a first-class,
// explicitly-signaled state instead of silent packet loss.
//
// Inbound work is classified into three priority classes:
//   - client ops (lowest): shed first, answered with an explicit
//     kOverloaded frame carrying a retry-after hint so clients back off
//     and route around this node instead of burning their retry budget;
//   - maintenance (gossip, anti-entropy, state transfer): shed under
//     overload EXCEPT for a guaranteed token-bucket trickle, so membership
//     and replication repair never starve (degradation, not collapse);
//   - admin/stats (highest): always admitted — a saturated node must stay
//     observable.
//
// Overload is judged from three signals, evaluated on a periodic tick:
//   - event-loop lag: how late the tick itself fires. On the real
//     single-threaded poll loop this is the honest saturation symptom
//     (timers starve while datagrams monopolize the loop); in the
//     discrete-event simulator timers never lag, so sims do not shed
//     spuriously.
//   - runtime queue depth, via an injected probe (the same signal the
//     df_runtime_queue_depth gauge exports);
//   - a Little's-law in-flight estimate: admitted-op rate x smoothed
//     service latency, capped by max_inflight_ops.
// Entry/exit use hysteresis (high/low watermarks) so the state does not
// flap at the boundary.
#pragma once

#include <cstdint>
#include <functional>

#include "common/metrics.hpp"
#include "common/types.hpp"

namespace dataflasks::core {

enum class WorkClass : std::uint8_t {
  kClientOp = 0,    ///< operation envelopes / sprayed op deliveries
  kMaintenance = 1, ///< gossip, slicing, anti-entropy, state transfer
  kAdmin = 2,       ///< stats/metrics: always admitted
};

struct AdmissionOptions {
  /// Master switch. Off by default so simulator fixtures pay nothing;
  /// the server config turns it on (see ServerConfig::node_options()).
  bool enabled = false;
  /// Little's-law in-flight cap (admitted-op rate x smoothed service
  /// latency). 0 disables this signal.
  std::size_t max_inflight_ops = 4096;
  /// Runtime queue depth entering / leaving overload (hysteresis).
  std::size_t queue_high = 4096;
  std::size_t queue_low = 1024;
  /// Event-loop lag (tick lateness, EWMA) entering / leaving overload.
  SimTime lag_high = 100 * kMillis;
  SimTime lag_low = 20 * kMillis;
  /// Signal-evaluation cadence (also the lag probe's own period).
  SimTime tick_period = 100 * kMillis;
  /// Maintenance messages per second still admitted while overloaded.
  std::uint32_t maintenance_trickle_per_sec = 200;
  /// Retry-after hint bounds carried in kOverloaded replies. The hint
  /// scales with how far past the lag watermark the node is.
  std::uint32_t retry_after_min_ms = 50;
  std::uint32_t retry_after_max_ms = 2000;
};

class AdmissionController {
 public:
  using ClockFn = std::function<SimTime()>;
  /// Instantaneous runtime queue depth (rt.pending_events() on the real
  /// runtime). Optional: without one the queue signal reads zero.
  using LoadProbeFn = std::function<std::size_t()>;

  struct Decision {
    bool admit = true;
    std::uint32_t retry_after_ms = 0;  ///< meaningful when !admit
  };

  AdmissionController(ClockFn clock, AdmissionOptions options,
                      MetricsRegistry& metrics);

  void set_load_probe(LoadProbeFn probe) { probe_ = std::move(probe); }

  /// One admission check for `ops` units of work in `cls`. Counts
  /// per-class admitted/shed metrics; never blocks.
  Decision admit(WorkClass cls, std::size_t ops = 1);

  /// Feeds the smoothed service-latency estimate (request hot path).
  void note_service(SimTime elapsed_us, std::size_t ops = 1);

  /// Periodic signal evaluation; schedule every options.tick_period.
  void tick();

  [[nodiscard]] bool overloaded() const { return overloaded_; }
  [[nodiscard]] const AdmissionOptions& options() const { return options_; }
  [[nodiscard]] std::uint32_t retry_after_ms() const;
  [[nodiscard]] double service_ewma_us() const { return service_ewma_us_; }
  [[nodiscard]] double inflight_estimate() const { return inflight_estimate_; }
  [[nodiscard]] double lag_ewma_us() const { return lag_ewma_us_; }
  [[nodiscard]] std::size_t last_queue_depth() const { return queue_depth_; }

 private:
  void evaluate(SimTime now);

  ClockFn clock_;
  AdmissionOptions options_;
  MetricsRegistry& metrics_;
  LoadProbeFn probe_;

  bool overloaded_ = false;
  SimTime expected_tick_ = 0;  ///< when the next tick should fire (0 = first)
  double lag_ewma_us_ = 0.0;
  double service_ewma_us_ = 0.0;
  double inflight_estimate_ = 0.0;
  std::size_t queue_depth_ = 0;

  /// Admitted client ops since the last tick (Little's-law arrival rate).
  std::uint64_t admitted_in_window_ = 0;
  SimTime window_start_ = 0;

  /// Maintenance trickle bucket: refilled on tick, spent while overloaded.
  double trickle_tokens_ = 0.0;
};

}  // namespace dataflasks::core
