#include "core/state_transfer.hpp"

#include <algorithm>

namespace dataflasks::core {

StateTransfer::StateTransfer(NodeId self, net::Transport& transport,
                             store::Store& store, Rng rng,
                             StateTransferOptions options, SliceFn my_slice,
                             KeySliceFn key_slice, SlicePeersFn slice_peers,
                             MetricsRegistry& metrics)
    : self_(self),
      transport_(transport),
      store_(store),
      rng_(rng),
      options_(options),
      my_slice_(std::move(my_slice)),
      key_slice_(std::move(key_slice)),
      slice_peers_(std::move(slice_peers)),
      metrics_(metrics) {
  ensure(options_.page_size > 0, "StateTransfer: zero page size");
}

void StateTransfer::begin() {
  active_ = true;
  target_slice_ = my_slice_();
  cursor_ = store::DigestEntry{};
  ticks_without_progress_ = 0;
  progressed_since_tick_ = false;
  request_page();
}

void StateTransfer::tick() {
  if (!active_) return;
  if (my_slice_() != target_slice_) {
    // Moved again mid-transfer: restart against the new slice.
    begin();
    return;
  }
  if (progressed_since_tick_) {
    progressed_since_tick_ = false;
    ticks_without_progress_ = 0;
    return;
  }
  if (++ticks_without_progress_ >= options_.stall_ticks) {
    ticks_without_progress_ = 0;
    request_page();  // retry, possibly with a different peer
  }
}

void StateTransfer::request_page() {
  const auto peers = slice_peers_(1);
  if (peers.empty()) return;  // no known slice-mates yet; tick() retries
  const StRequest request{target_slice_, cursor_};
  transport_.send(
      net::Message{self_, peers.front(), kStRequest, encode(request)});
  metrics_.counter("st.pages_requested").add();
}

bool StateTransfer::handle(const net::Message& msg) {
  switch (msg.type) {
    case kStRequest: {
      const auto request = decode_st_request(msg.payload);
      if (request) handle_request(msg, *request);
      return true;
    }
    case kStReply: {
      const auto reply = decode_st_reply(msg.payload);
      if (reply) handle_reply(*reply);
      return true;
    }
    default:
      return false;
  }
}

void StateTransfer::handle_request(const net::Message& msg,
                                   const StRequest& request) {
  // Size pages against what the transport can actually carry to this
  // requester. Over UDP that is one datagram-bounded page per request (a
  // lost reply is a stalled page, retried from the same cursor; splitting a
  // page across datagrams would let a lost middle chunk advance the cursor
  // past objects never received). Over a stream the transport is reliable
  // and the budget is megabytes, so one request is answered with a burst of
  // larger pages — every page but the last marked `continues`, so the
  // joiner follows along without a request per page.
  const std::size_t transport_budget = transport_.max_payload(msg.src);
  const bool streamed =
      transport_budget > net::Transport::kDefaultMaxPayload;
  // Leave codec headroom: the reply carries slice/flags/count besides the
  // encoded objects that the byte budget counts.
  const std::size_t byte_budget =
      streamed ? transport_budget - 4096 : kBatchBytesBudget;
  const std::size_t count_limit =
      streamed ? options_.page_size * options_.stream_page_scale
               : options_.page_size;
  const std::size_t max_pages = streamed ? options_.stream_burst_pages : 1;

  store::DigestEntry cursor = request.cursor;
  for (std::size_t page = 0; page < max_pages; ++page) {
    bool more = false;
    StReply reply =
        build_page(request.slice, cursor, byte_budget, count_limit, more);
    reply.continues = more && page + 1 < max_pages;
    const bool empty_page = reply.objects.empty();
    transport_.send(net::Message{self_, msg.src, kStReply, encode(reply)});
    metrics_.counter("st.pages_served").add();
    // An empty non-done page means every candidate raced away between
    // digest and store; stop the burst rather than spin on it.
    if (!reply.continues || empty_page) break;
  }
}

StReply StateTransfer::build_page(SliceId slice, store::DigestEntry& cursor,
                                  std::size_t byte_budget,
                                  std::size_t count_limit, bool& more) {
  // One page of the slice's objects, ordered by (key, version), strictly
  // after the cursor. Candidates come from the store's cached digest (no
  // full-store materialization per page request), and only the page worth
  // of entries is fully sorted.
  std::vector<store::DigestEntry> entries;
  for (const store::DigestEntry& e : store_.digest_entries()) {
    if (key_slice_(e.key) == slice && cursor < e) entries.push_back(e);
  }
  const bool count_capped = entries.size() > count_limit;
  if (count_capped) {
    std::nth_element(entries.begin(),
                     entries.begin() + static_cast<std::ptrdiff_t>(count_limit),
                     entries.end());
    entries.resize(count_limit);
  }
  std::sort(entries.begin(), entries.end());

  StReply reply;
  reply.slice = slice;
  std::size_t page_bytes = 0;
  bool truncated = false;
  for (const store::DigestEntry& e : entries) {
    auto obj = store_.get(e.key, e.version);
    if (!obj.ok()) {
      // Digest/store raced; the entry is simply not shipped. The cursor
      // still moves past it so a burst does not re-examine it.
      cursor = std::max(cursor, e);
      continue;
    }
    const std::size_t obj_bytes = store::encoded_size(obj.value());
    // Always ship at least one object; a single value over the budget
    // travels alone and the transport's hard cap decides its fate.
    if (!reply.objects.empty() && page_bytes + obj_bytes > byte_budget) {
      truncated = true;
      break;
    }
    page_bytes += obj_bytes;
    cursor = std::max(cursor, e);
    reply.objects.push_back(std::move(obj).value());
  }
  // Done only when this page covers everything that remains: a count-capped
  // entries list means more may exist, and a byte-truncated page leaves its
  // unsent suffix for the next cursor round.
  more = count_capped || truncated;
  reply.done = !more;
  return reply;
}

void StateTransfer::handle_reply(const StReply& reply) {
  if (!active_ || reply.slice != target_slice_) return;

  const store::DigestEntry before = cursor_;
  for (const store::Object& obj : reply.objects) {
    // The cursor advances over EVERY object the donor sent, including ones
    // our slice map says belong elsewhere: if the donor's map diverges
    // from ours, skipping them would re-request the same page forever.
    // Foreign objects are simply not stored.
    const store::DigestEntry entry{obj.key, obj.version};
    cursor_ = std::max(cursor_, entry);
    if (key_slice_(obj.key) != target_slice_) continue;
    if (store_.put(obj).ok()) {
      metrics_.counter("st.objects_received").add();
    }
  }
  // Only a moving cursor (or completion) counts as progress; a reply that
  // moved nothing leaves the stall clock running so tick() retries with
  // another peer.
  if (cursor_ != before || reply.done) progressed_since_tick_ = true;

  if (reply.done) {
    active_ = false;
    // Drop data that belongs to other slices now that ours is complete; the
    // remaining members of the old slice still hold it.
    const SliceId mine = target_slice_;
    store_.remove_keys_where(
        [this, mine](const Key& key) { return key_slice_(key) != mine; });
    if (on_complete_) on_complete_(target_slice_);
  } else if (!reply.continues) {
    // A `continues` page is one of a donor-side burst: the next page is
    // already on the wire, so requesting here would double-serve. Should
    // the burst's tail get lost with its connection, the stall clock still
    // runs and tick() re-requests from the cursor.
    request_page();
  }
}

}  // namespace dataflasks::core
