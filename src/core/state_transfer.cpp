#include "core/state_transfer.hpp"

#include <algorithm>

namespace dataflasks::core {

StateTransfer::StateTransfer(NodeId self, net::Transport& transport,
                             store::Store& store, Rng rng,
                             StateTransferOptions options, SliceFn my_slice,
                             KeySliceFn key_slice, SlicePeersFn slice_peers,
                             MetricsRegistry& metrics)
    : self_(self),
      transport_(transport),
      store_(store),
      rng_(rng),
      options_(options),
      my_slice_(std::move(my_slice)),
      key_slice_(std::move(key_slice)),
      slice_peers_(std::move(slice_peers)),
      metrics_(metrics) {
  ensure(options_.page_size > 0, "StateTransfer: zero page size");
}

void StateTransfer::begin() {
  active_ = true;
  target_slice_ = my_slice_();
  cursor_ = store::DigestEntry{};
  ticks_without_progress_ = 0;
  progressed_since_tick_ = false;
  request_page();
}

void StateTransfer::tick() {
  if (!active_) return;
  if (my_slice_() != target_slice_) {
    // Moved again mid-transfer: restart against the new slice.
    begin();
    return;
  }
  if (progressed_since_tick_) {
    progressed_since_tick_ = false;
    ticks_without_progress_ = 0;
    return;
  }
  if (++ticks_without_progress_ >= options_.stall_ticks) {
    ticks_without_progress_ = 0;
    request_page();  // retry, possibly with a different peer
  }
}

void StateTransfer::request_page() {
  const auto peers = slice_peers_(1);
  if (peers.empty()) return;  // no known slice-mates yet; tick() retries
  const StRequest request{target_slice_, cursor_};
  transport_.send(
      net::Message{self_, peers.front(), kStRequest, encode(request)});
  metrics_.counter("st.pages_requested").add();
}

bool StateTransfer::handle(const net::Message& msg) {
  switch (msg.type) {
    case kStRequest: {
      const auto request = decode_st_request(msg.payload);
      if (request) handle_request(msg, *request);
      return true;
    }
    case kStReply: {
      const auto reply = decode_st_reply(msg.payload);
      if (reply) handle_reply(*reply);
      return true;
    }
    default:
      return false;
  }
}

void StateTransfer::handle_request(const net::Message& msg,
                                   const StRequest& request) {
  // Serve a page of the requested slice's objects, ordered by (key, version),
  // strictly after the cursor. Candidates come from the store's cached
  // digest (no full-store materialization per page request), and only the
  // page worth of entries is fully sorted.
  std::vector<store::DigestEntry> entries;
  for (const store::DigestEntry& e : store_.digest_entries()) {
    if (key_slice_(e.key) == request.slice && request.cursor < e) {
      entries.push_back(e);
    }
  }
  if (entries.size() > options_.page_size) {
    std::nth_element(entries.begin(), entries.begin() + options_.page_size,
                     entries.end());
    entries.resize(options_.page_size);
  }
  std::sort(entries.begin(), entries.end());

  // A page of large values can exceed what one UDP datagram carries, and
  // the transport drops oversized frames — which would stall the join
  // forever. Bound the page by bytes as well as by count: ship the longest
  // prefix that fits the datagram budget and let cursor pagination fetch
  // the rest. One datagram per request keeps loss recovery trivial (a
  // dropped reply is a stalled page, retried from the same cursor);
  // splitting one page across datagrams would let a lost middle chunk
  // advance the cursor past objects that were never received.
  StReply reply;
  reply.slice = request.slice;
  std::size_t page_bytes = 0;
  bool truncated = false;
  for (const store::DigestEntry& e : entries) {
    auto obj = store_.get(e.key, e.version);
    if (!obj.ok()) continue;  // digest/store raced; entry simply not shipped
    const std::size_t obj_bytes = store::encoded_size(obj.value());
    // Always ship at least one object; a single value over the budget
    // travels alone and the transport's hard cap decides its fate.
    if (!reply.objects.empty() &&
        page_bytes + obj_bytes > kBatchBytesBudget) {
      truncated = true;
      break;
    }
    page_bytes += obj_bytes;
    reply.objects.push_back(std::move(obj).value());
  }
  // Done only when this reply covers everything that remains: a full
  // entries page means more may exist, and a byte-truncated page leaves
  // its unsent suffix for the next cursor round.
  reply.done = entries.size() < options_.page_size && !truncated;
  transport_.send(net::Message{self_, msg.src, kStReply, encode(reply)});
  metrics_.counter("st.pages_served").add();
}

void StateTransfer::handle_reply(const StReply& reply) {
  if (!active_ || reply.slice != target_slice_) return;

  const store::DigestEntry before = cursor_;
  for (const store::Object& obj : reply.objects) {
    // The cursor advances over EVERY object the donor sent, including ones
    // our slice map says belong elsewhere: if the donor's map diverges
    // from ours, skipping them would re-request the same page forever.
    // Foreign objects are simply not stored.
    const store::DigestEntry entry{obj.key, obj.version};
    cursor_ = std::max(cursor_, entry);
    if (key_slice_(obj.key) != target_slice_) continue;
    if (store_.put(obj).ok()) {
      metrics_.counter("st.objects_received").add();
    }
  }
  // Only a moving cursor (or completion) counts as progress; a reply that
  // moved nothing leaves the stall clock running so tick() retries with
  // another peer.
  if (cursor_ != before || reply.done) progressed_since_tick_ = true;

  if (reply.done) {
    active_ = false;
    // Drop data that belongs to other slices now that ours is complete; the
    // remaining members of the old slice still hold it.
    const SliceId mine = target_slice_;
    store_.remove_keys_where(
        [this, mine](const Key& key) { return key_slice_(key) != mine; });
    if (on_complete_) on_complete_(target_slice_);
  } else {
    request_page();
  }
}

}  // namespace dataflasks::core
