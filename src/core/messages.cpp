#include "core/messages.hpp"

namespace dataflasks::core {

namespace {

void encode_version_opt(Writer& w, const std::optional<Version>& v) {
  w.boolean(v.has_value());
  w.u64(v.value_or(0));
}

std::optional<Version> decode_version_opt(Reader& r) {
  const bool has = r.boolean();
  const Version v = r.u64();
  return has ? std::optional<Version>(v) : std::nullopt;
}

void encode_config(Writer& w, const slicing::SliceConfig& config) {
  w.u32(config.slice_count);
  w.u64(config.epoch);
}

slicing::SliceConfig decode_config(Reader& r) {
  slicing::SliceConfig config;
  config.slice_count = r.u32();
  config.epoch = r.u64();
  return config;
}

// ---- Operation / RoutedOp codec --------------------------------------------

void encode_op(Writer& w, const Operation& op, std::uint8_t protocol) {
  w.u8(static_cast<std::uint8_t>(op.type));
  w.str(op.key);
  switch (op.type) {
    case OpType::kPut:
      w.u64(op.version.value_or(0));
      // v3 puts always carry the TTL field (0 = forever): the field's
      // presence is keyed on the envelope's protocol byte, never on its
      // value, so the layout is decidable without lookahead.
      if (protocol >= 3) w.u32(op.ttl_ms);
      w.bytes(op.value);
      break;
    case OpType::kGet:
      encode_version_opt(w, op.version);
      break;
    case OpType::kDelete:
      w.u64(op.version.value_or(0));
      break;
    case OpType::kCompareAndPut:
      w.u64(op.expected);
      w.u64(op.version.value_or(0));
      w.bytes(op.value);
      break;
    case OpType::kStats:
      break;  // type + (empty) key is the whole op
  }
}

/// Returns nullopt (and fails the reader) on an unknown op type.
std::optional<Operation> decode_op(Reader& r, std::uint8_t protocol) {
  Operation op;
  const std::uint8_t type = r.u8();
  op.key = r.str();
  switch (type) {
    case static_cast<std::uint8_t>(OpType::kPut):
      op.type = OpType::kPut;
      op.version = r.u64();
      if (protocol >= 3) op.ttl_ms = r.u32();
      op.value = r.payload();
      break;
    case static_cast<std::uint8_t>(OpType::kGet):
      op.type = OpType::kGet;
      op.version = decode_version_opt(r);
      break;
    case static_cast<std::uint8_t>(OpType::kDelete):
      op.type = OpType::kDelete;
      op.version = r.u64();
      break;
    case static_cast<std::uint8_t>(OpType::kCompareAndPut):
      op.type = OpType::kCompareAndPut;
      op.expected = r.u64();
      op.version = r.u64();
      op.value = r.payload();
      break;
    case static_cast<std::uint8_t>(OpType::kStats):
      op.type = OpType::kStats;
      break;
    default:
      return std::nullopt;
  }
  return op;
}

void encode_routed(Writer& w, const RoutedOp& routed, std::uint8_t protocol) {
  w.request_id(routed.rid);
  encode_op(w, routed.op, protocol);
}

/// Decodes a RoutedOp list shared by envelopes and spray payloads. Sets the
/// reader failed on any malformed element.
std::optional<std::vector<RoutedOp>> decode_routed_ops(Reader& r,
                                                       std::uint8_t protocol) {
  bool bad_op = false;
  auto ops = r.vec<RoutedOp>([&r, &bad_op, protocol]() {
    RoutedOp routed;
    routed.rid = r.request_id();
    auto op = decode_op(r, protocol);
    if (!op) {
      bad_op = true;
      return RoutedOp{};
    }
    routed.op = std::move(*op);
    return routed;
  });
  if (bad_op || !r.ok()) return std::nullopt;
  return ops;
}

std::size_t encoded_size_routed(const std::vector<RoutedOp>& ops) {
  std::size_t size = sizeof(std::uint32_t);
  for (const RoutedOp& routed : ops) size += encoded_size(routed);
  return size;
}

}  // namespace

std::uint8_t min_protocol_for(const Operation& op) {
  if (op.type == OpType::kPut && op.ttl_ms != 0) return 3;
  return min_protocol_for(op.type);
}

std::size_t encoded_size(const Operation& op) {
  // type + key + per-type version field + (put only) value block. Sized at
  // the native (v3) layout: for downgraded envelopes this overestimates a
  // put by the 4-byte TTL field, which only makes reserve hints and chunk
  // budgets slightly conservative.
  std::size_t size = 1 + sizeof(std::uint32_t) + op.key.size();
  switch (op.type) {
    case OpType::kPut:
      size += sizeof(Version) + sizeof(std::uint32_t) /* ttl_ms */ +
              sizeof(std::uint32_t) + op.value.size();
      break;
    case OpType::kGet:
      size += 1 + sizeof(Version);  // optional<Version>
      break;
    case OpType::kDelete:
      size += sizeof(Version);
      break;
    case OpType::kCompareAndPut:
      size += 2 * sizeof(Version) + sizeof(std::uint32_t) + op.value.size();
      break;
    case OpType::kStats:
      break;
  }
  return size;
}

std::size_t encoded_size(const RoutedOp& routed) {
  return 2 * sizeof(std::uint64_t) + encoded_size(routed.op);
}

// ---- envelope ---------------------------------------------------------------

Payload encode(const OpEnvelope& msg) {
  Writer w(1 + encoded_size_routed(msg.ops));
  w.u8(msg.protocol);
  w.vec(msg.ops, [&w, &msg](const RoutedOp& routed) {
    encode_routed(w, routed, msg.protocol);
  });
  return w.take_payload();
}

std::optional<OpEnvelope> decode_op_envelope(const Payload& payload) {
  Reader r(payload);
  OpEnvelope msg;
  msg.protocol = r.u8();
  // Every version back to kOpProtocolMin is decodable (the protocol byte
  // selects the per-op layout), so decode structurally and let the request
  // handler decide whether it *serves* the carried version — a mismatch
  // must reach it to produce the explicit kVersionMismatch reply.
  if (!r.ok() || msg.protocol < kOpProtocolMin ||
      msg.protocol > kOpProtocolVersion) {
    return std::nullopt;
  }
  auto ops = decode_routed_ops(r, msg.protocol);
  if (!ops || !r.finish().ok()) return std::nullopt;
  msg.ops = std::move(*ops);
  return msg;
}

// ---- inner payloads ---------------------------------------------------------

Payload encode_inner(const OpsRequest& req) {
  // Node-to-node spray traffic always rides the native layout: the contact
  // node re-encodes here after decoding whatever version the client spoke.
  Writer w(1 + encoded_size_routed(req.ops));
  w.u8(static_cast<std::uint8_t>(InnerKind::kOps));
  w.vec(req.ops, [&w](const RoutedOp& routed) {
    encode_routed(w, routed, kOpProtocolVersion);
  });
  return w.take_payload();
}

Payload encode_inner(const HandoffRequest& req) {
  Writer w(1 + store::encoded_size(req.object));
  w.u8(static_cast<std::uint8_t>(InnerKind::kHandoff));
  encode(w, req.object);
  return w.take_payload();
}

std::optional<InnerKind> peek_inner_kind(const Payload& payload) {
  if (payload.empty()) return std::nullopt;
  switch (payload.front()) {
    case static_cast<std::uint8_t>(InnerKind::kOps): return InnerKind::kOps;
    case static_cast<std::uint8_t>(InnerKind::kHandoff):
      return InnerKind::kHandoff;
    default: return std::nullopt;
  }
}

std::optional<OpsRequest> decode_ops(const Payload& payload) {
  Reader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(InnerKind::kOps)) {
    return std::nullopt;
  }
  auto ops = decode_routed_ops(r, kOpProtocolVersion);
  if (!ops || !r.finish().ok()) return std::nullopt;
  OpsRequest req;
  req.ops = std::move(*ops);
  return req;
}

std::optional<HandoffRequest> decode_handoff(const Payload& payload) {
  Reader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(InnerKind::kHandoff)) {
    return std::nullopt;
  }
  HandoffRequest req;
  req.object = store::decode_object(r);
  if (!r.finish().ok()) return std::nullopt;
  return req;
}

// ---- reply batch ------------------------------------------------------------

std::size_t encoded_size(const OpReply& reply) {
  // rid + type + status + object.
  return 2 * sizeof(std::uint64_t) + 2 + store::encoded_size(reply.object);
}

Payload encode(const OpReplyBatch& msg) {
  std::size_t size =
      sizeof(std::uint64_t) + sizeof(std::uint32_t) + sizeof(std::uint32_t);
  for (const OpReply& reply : msg.replies) {
    size += encoded_size(reply);
  }
  Writer w(size);
  w.node_id(msg.replica);
  w.u32(msg.slice);
  w.vec(msg.replies, [&w](const OpReply& reply) {
    w.request_id(reply.rid);
    w.u8(static_cast<std::uint8_t>(reply.type));
    w.u8(static_cast<std::uint8_t>(reply.status));
    store::encode(w, reply.object);
  });
  return w.take_payload();
}

std::optional<OpReplyBatch> decode_op_reply_batch(const Payload& payload) {
  Reader r(payload);
  OpReplyBatch msg;
  msg.replica = r.node_id();
  msg.slice = r.u32();
  bool bad = false;
  msg.replies = r.vec<OpReply>([&r, &bad]() {
    OpReply reply;
    reply.rid = r.request_id();
    const std::uint8_t type = r.u8();
    const std::uint8_t status = r.u8();
    if (type < static_cast<std::uint8_t>(OpType::kPut) ||
        type > static_cast<std::uint8_t>(OpType::kStats) ||
        status < static_cast<std::uint8_t>(OpStatus::kOk) ||
        status > static_cast<std::uint8_t>(OpStatus::kOverloaded)) {
      bad = true;
      return reply;
    }
    reply.type = static_cast<OpType>(type);
    reply.status = static_cast<OpStatus>(status);
    reply.object = store::decode_object(r);
    return reply;
  });
  if (bad || !r.finish().ok()) return std::nullopt;
  return msg;
}

// ---- replication push -------------------------------------------------------

Payload encode(const ReplicatePush& msg) {
  std::size_t size = sizeof(std::uint32_t);
  for (const store::Object& o : msg.objects) size += store::encoded_size(o);
  Writer w(size);
  w.vec(msg.objects, [&w](const store::Object& o) { store::encode(w, o); });
  return w.take_payload();
}

std::optional<ReplicatePush> decode_replicate_push(const Payload& payload) {
  Reader r(payload);
  ReplicatePush msg;
  msg.objects =
      r.vec<store::Object>([&r]() { return store::decode_object(r); });
  if (!r.finish().ok()) return std::nullopt;
  return msg;
}

// ---- version negotiation ------------------------------------------------------

Payload encode(const VersionMismatch& msg) {
  Writer w(2 * sizeof(std::uint64_t) + 2);
  w.request_id(msg.rid);
  w.u8(msg.got);
  w.u8(msg.supported);
  return w.take_payload();
}

std::optional<VersionMismatch> decode_version_mismatch(
    const Payload& payload) {
  Reader r(payload);
  VersionMismatch msg;
  msg.rid = r.request_id();
  msg.got = r.u8();
  msg.supported = r.u8();
  if (!r.finish().ok()) return std::nullopt;
  return msg;
}

// ---- overload backpressure ----------------------------------------------------

Payload encode(const OverloadReply& msg) {
  Writer w(2 * sizeof(std::uint64_t) + sizeof(std::uint32_t));
  w.request_id(msg.rid);
  w.u32(msg.retry_after_ms);
  return w.take_payload();
}

std::optional<OverloadReply> decode_overload_reply(const Payload& payload) {
  Reader r(payload);
  OverloadReply msg;
  msg.rid = r.request_id();
  msg.retry_after_ms = r.u32();
  if (!r.finish().ok()) return std::nullopt;
  return msg;
}

// ---- slice advertisement ------------------------------------------------------

Payload encode(const SliceAdvert& msg) {
  Writer w(2 * sizeof(std::uint64_t) + 2 * sizeof(std::uint32_t) +
           encoded_size_endpoint_opt(msg.endpoint));
  w.node_id(msg.node);
  w.u32(msg.slice);
  encode_config(w, msg.config);
  encode_endpoint_opt(w, msg.endpoint);
  return w.take_payload();
}

std::optional<SliceAdvert> decode_slice_advert(const Payload& payload) {
  Reader r(payload);
  SliceAdvert msg;
  msg.node = r.node_id();
  msg.slice = r.u32();
  msg.config = decode_config(r);
  msg.endpoint = decode_endpoint_opt(r);
  if (!r.finish().ok()) return std::nullopt;
  return msg;
}

// ---- anti-entropy -------------------------------------------------------------

Payload encode_ae_digest(bool is_reply,
                         const std::vector<store::DigestEntry>& entries) {
  std::size_t size = 1 + sizeof(std::uint32_t);
  for (const store::DigestEntry& e : entries) size += store::encoded_size(e);
  Writer w(size);
  w.boolean(is_reply);
  w.vec(entries, [&w](const store::DigestEntry& e) { store::encode(w, e); });
  return w.take_payload();
}

Payload encode(const AeDigest& msg) {
  return encode_ae_digest(msg.is_reply, msg.entries);
}

std::optional<AeDigest> decode_ae_digest(const Payload& payload) {
  Reader r(payload);
  AeDigest msg;
  msg.is_reply = r.boolean();
  msg.entries = r.vec<store::DigestEntry>(
      [&r]() { return store::decode_digest_entry(r); });
  if (!r.finish().ok()) return std::nullopt;
  return msg;
}

Payload encode(const AePull& msg) {
  std::size_t size = sizeof(std::uint32_t);
  for (const store::DigestEntry& e : msg.entries) size += store::encoded_size(e);
  Writer w(size);
  w.vec(msg.entries,
        [&w](const store::DigestEntry& e) { store::encode(w, e); });
  return w.take_payload();
}

std::optional<AePull> decode_ae_pull(const Payload& payload) {
  Reader r(payload);
  AePull msg;
  msg.entries = r.vec<store::DigestEntry>(
      [&r]() { return store::decode_digest_entry(r); });
  if (!r.finish().ok()) return std::nullopt;
  return msg;
}

Payload encode(const AePush& msg) {
  std::size_t size = sizeof(std::uint32_t);
  for (const store::Object& o : msg.objects) size += store::encoded_size(o);
  Writer w(size);
  w.vec(msg.objects, [&w](const store::Object& o) { store::encode(w, o); });
  return w.take_payload();
}

std::optional<AePush> decode_ae_push(const Payload& payload) {
  Reader r(payload);
  AePush msg;
  msg.objects =
      r.vec<store::Object>([&r]() { return store::decode_object(r); });
  if (!r.finish().ok()) return std::nullopt;
  return msg;
}

// Receivers allocate bucket_count-sized arrays (fingerprints, membership
// masks), so a wire-supplied count far beyond what bucket sizing ever
// produces (4096) is malformed input, not a bigger store.
constexpr std::uint32_t kMaxSummaryBuckets = 65536;

Payload encode(const AeSummary& msg) {
  Writer w(sizeof(std::uint32_t) + sizeof(std::uint64_t) +
           sizeof(std::uint32_t) +
           msg.fingerprints.size() * sizeof(std::uint64_t));
  w.u32(msg.bucket_count);
  w.u64(msg.entry_count);
  w.vec(msg.fingerprints, [&w](std::uint64_t fp) { w.u64(fp); });
  return w.take_payload();
}

std::optional<AeSummary> decode_ae_summary(const Payload& payload) {
  Reader r(payload);
  AeSummary msg;
  msg.bucket_count = r.u32();
  msg.entry_count = r.u64();
  msg.fingerprints = r.vec<std::uint64_t>([&r]() { return r.u64(); });
  if (!r.finish().ok()) return std::nullopt;
  // A summary whose fingerprint array disagrees with its own bucket count
  // is malformed — comparing it positionally would be garbage.
  if (msg.bucket_count == 0 || msg.bucket_count > kMaxSummaryBuckets ||
      msg.fingerprints.size() != msg.bucket_count) {
    return std::nullopt;
  }
  return msg;
}

Payload encode(const AeBucketDigest& msg) {
  std::size_t size = 1 + 2 * sizeof(std::uint32_t) +
                     msg.buckets.size() * sizeof(std::uint32_t) +
                     sizeof(std::uint32_t);
  for (const store::DigestEntry& e : msg.entries) size += store::encoded_size(e);
  Writer w(size);
  w.boolean(msg.is_reply);
  w.u32(msg.bucket_count);
  w.vec(msg.buckets, [&w](std::uint32_t b) { w.u32(b); });
  w.vec(msg.entries, [&w](const store::DigestEntry& e) { store::encode(w, e); });
  return w.take_payload();
}

std::optional<AeBucketDigest> decode_ae_bucket_digest(const Payload& payload) {
  Reader r(payload);
  AeBucketDigest msg;
  msg.is_reply = r.boolean();
  msg.bucket_count = r.u32();
  msg.buckets = r.vec<std::uint32_t>([&r]() { return r.u32(); });
  msg.entries = r.vec<store::DigestEntry>(
      [&r]() { return store::decode_digest_entry(r); });
  if (!r.finish().ok()) return std::nullopt;
  if (msg.bucket_count == 0 || msg.bucket_count > kMaxSummaryBuckets) {
    return std::nullopt;
  }
  for (const std::uint32_t b : msg.buckets) {
    if (b >= msg.bucket_count) return std::nullopt;
  }
  return msg;
}

// ---- state transfer ------------------------------------------------------------

Payload encode(const StRequest& msg) {
  Writer w(sizeof(std::uint32_t) + store::encoded_size(msg.cursor));
  w.u32(msg.slice);
  store::encode(w, msg.cursor);
  return w.take_payload();
}

std::optional<StRequest> decode_st_request(const Payload& payload) {
  Reader r(payload);
  StRequest msg;
  msg.slice = r.u32();
  msg.cursor = store::decode_digest_entry(r);
  if (!r.finish().ok()) return std::nullopt;
  return msg;
}

Payload encode(const StReply& msg) {
  std::size_t size = sizeof(std::uint32_t) + 2;
  for (const store::Object& o : msg.objects) size += store::encoded_size(o);
  Writer w(size);
  w.u32(msg.slice);
  w.boolean(msg.done);
  w.boolean(msg.continues);
  w.vec(msg.objects, [&w](const store::Object& o) { store::encode(w, o); });
  return w.take_payload();
}

std::optional<StReply> decode_st_reply(const Payload& payload) {
  Reader r(payload);
  StReply msg;
  msg.slice = r.u32();
  msg.done = r.boolean();
  msg.continues = r.boolean();
  msg.objects =
      r.vec<store::Object>([&r]() { return store::decode_object(r); });
  if (!r.finish().ok()) return std::nullopt;
  return msg;
}

}  // namespace dataflasks::core
