#include "core/messages.hpp"

namespace dataflasks::core {

namespace {

void encode_version_opt(Writer& w, const std::optional<Version>& v) {
  w.boolean(v.has_value());
  w.u64(v.value_or(0));
}

std::optional<Version> decode_version_opt(Reader& r) {
  const bool has = r.boolean();
  const Version v = r.u64();
  return has ? std::optional<Version>(v) : std::nullopt;
}

void encode_config(Writer& w, const slicing::SliceConfig& config) {
  w.u32(config.slice_count);
  w.u64(config.epoch);
}

slicing::SliceConfig decode_config(Reader& r) {
  slicing::SliceConfig config;
  config.slice_count = r.u32();
  config.epoch = r.u64();
  return config;
}

}  // namespace

// ---- inner payloads ---------------------------------------------------------

Bytes encode_inner(const PutRequest& req) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(InnerKind::kPut));
  w.request_id(req.rid);
  w.node_id(req.client);
  encode(w, req.object);
  return w.take();
}

Bytes encode_inner(const GetRequest& req) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(InnerKind::kGet));
  w.request_id(req.rid);
  w.node_id(req.client);
  w.str(req.key);
  encode_version_opt(w, req.version);
  return w.take();
}

Bytes encode_inner(const HandoffRequest& req) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(InnerKind::kHandoff));
  encode(w, req.object);
  return w.take();
}

std::optional<InnerKind> peek_inner_kind(const Bytes& payload) {
  if (payload.empty()) return std::nullopt;
  switch (payload.front()) {
    case static_cast<std::uint8_t>(InnerKind::kPut): return InnerKind::kPut;
    case static_cast<std::uint8_t>(InnerKind::kGet): return InnerKind::kGet;
    case static_cast<std::uint8_t>(InnerKind::kHandoff):
      return InnerKind::kHandoff;
    default: return std::nullopt;
  }
}

std::optional<HandoffRequest> decode_handoff(const Bytes& payload) {
  Reader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(InnerKind::kHandoff)) {
    return std::nullopt;
  }
  HandoffRequest req;
  req.object = store::decode_object(r);
  if (!r.finish().ok()) return std::nullopt;
  return req;
}

std::optional<PutRequest> decode_put(const Bytes& payload) {
  Reader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(InnerKind::kPut)) return std::nullopt;
  PutRequest req;
  req.rid = r.request_id();
  req.client = r.node_id();
  req.object = store::decode_object(r);
  if (!r.finish().ok()) return std::nullopt;
  return req;
}

std::optional<GetRequest> decode_get(const Bytes& payload) {
  Reader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(InnerKind::kGet)) return std::nullopt;
  GetRequest req;
  req.rid = r.request_id();
  req.client = r.node_id();
  req.key = r.str();
  req.version = decode_version_opt(r);
  if (!r.finish().ok()) return std::nullopt;
  return req;
}

// ---- direct messages --------------------------------------------------------

Bytes encode(const PutAck& msg) {
  Writer w;
  w.request_id(msg.rid);
  w.node_id(msg.replica);
  w.u32(msg.slice);
  w.str(msg.key);
  w.u64(msg.version);
  return w.take();
}

std::optional<PutAck> decode_put_ack(const Bytes& payload) {
  Reader r(payload);
  PutAck msg;
  msg.rid = r.request_id();
  msg.replica = r.node_id();
  msg.slice = r.u32();
  msg.key = r.str();
  msg.version = r.u64();
  if (!r.finish().ok()) return std::nullopt;
  return msg;
}

Bytes encode(const GetReply& msg) {
  Writer w;
  w.request_id(msg.rid);
  w.node_id(msg.replica);
  w.u32(msg.slice);
  w.boolean(msg.found);
  encode(w, msg.object);
  return w.take();
}

std::optional<GetReply> decode_get_reply(const Bytes& payload) {
  Reader r(payload);
  GetReply msg;
  msg.rid = r.request_id();
  msg.replica = r.node_id();
  msg.slice = r.u32();
  msg.found = r.boolean();
  msg.object = store::decode_object(r);
  if (!r.finish().ok()) return std::nullopt;
  return msg;
}

Bytes encode(const ReplicatePush& msg) {
  Writer w;
  encode(w, msg.object);
  return w.take();
}

std::optional<ReplicatePush> decode_replicate_push(const Bytes& payload) {
  Reader r(payload);
  ReplicatePush msg;
  msg.object = store::decode_object(r);
  if (!r.finish().ok()) return std::nullopt;
  return msg;
}

// ---- slice advertisement ------------------------------------------------------

Bytes encode(const SliceAdvert& msg) {
  Writer w;
  w.node_id(msg.node);
  w.u32(msg.slice);
  encode_config(w, msg.config);
  return w.take();
}

std::optional<SliceAdvert> decode_slice_advert(const Bytes& payload) {
  Reader r(payload);
  SliceAdvert msg;
  msg.node = r.node_id();
  msg.slice = r.u32();
  msg.config = decode_config(r);
  if (!r.finish().ok()) return std::nullopt;
  return msg;
}

// ---- anti-entropy -------------------------------------------------------------

Bytes encode(const AeDigest& msg) {
  Writer w;
  w.boolean(msg.is_reply);
  w.vec(msg.entries,
        [&w](const store::DigestEntry& e) { store::encode(w, e); });
  return w.take();
}

std::optional<AeDigest> decode_ae_digest(const Bytes& payload) {
  Reader r(payload);
  AeDigest msg;
  msg.is_reply = r.boolean();
  msg.entries = r.vec<store::DigestEntry>(
      [&r]() { return store::decode_digest_entry(r); });
  if (!r.finish().ok()) return std::nullopt;
  return msg;
}

Bytes encode(const AePull& msg) {
  Writer w;
  w.vec(msg.entries,
        [&w](const store::DigestEntry& e) { store::encode(w, e); });
  return w.take();
}

std::optional<AePull> decode_ae_pull(const Bytes& payload) {
  Reader r(payload);
  AePull msg;
  msg.entries = r.vec<store::DigestEntry>(
      [&r]() { return store::decode_digest_entry(r); });
  if (!r.finish().ok()) return std::nullopt;
  return msg;
}

Bytes encode(const AePush& msg) {
  Writer w;
  w.vec(msg.objects, [&w](const store::Object& o) { store::encode(w, o); });
  return w.take();
}

std::optional<AePush> decode_ae_push(const Bytes& payload) {
  Reader r(payload);
  AePush msg;
  msg.objects =
      r.vec<store::Object>([&r]() { return store::decode_object(r); });
  if (!r.finish().ok()) return std::nullopt;
  return msg;
}

// ---- state transfer ------------------------------------------------------------

Bytes encode(const StRequest& msg) {
  Writer w;
  w.u32(msg.slice);
  store::encode(w, msg.cursor);
  return w.take();
}

std::optional<StRequest> decode_st_request(const Bytes& payload) {
  Reader r(payload);
  StRequest msg;
  msg.slice = r.u32();
  msg.cursor = store::decode_digest_entry(r);
  if (!r.finish().ok()) return std::nullopt;
  return msg;
}

Bytes encode(const StReply& msg) {
  Writer w;
  w.u32(msg.slice);
  w.boolean(msg.done);
  w.vec(msg.objects, [&w](const store::Object& o) { store::encode(w, o); });
  return w.take();
}

std::optional<StReply> decode_st_reply(const Bytes& payload) {
  Reader r(payload);
  StReply msg;
  msg.slice = r.u32();
  msg.done = r.boolean();
  msg.objects =
      r.vec<store::Object>([&r]() { return store::decode_object(r); });
  if (!r.finish().ok()) return std::nullopt;
  return msg;
}

}  // namespace dataflasks::core
