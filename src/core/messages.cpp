#include "core/messages.hpp"

namespace dataflasks::core {

namespace {

void encode_version_opt(Writer& w, const std::optional<Version>& v) {
  w.boolean(v.has_value());
  w.u64(v.value_or(0));
}

std::optional<Version> decode_version_opt(Reader& r) {
  const bool has = r.boolean();
  const Version v = r.u64();
  return has ? std::optional<Version>(v) : std::nullopt;
}

void encode_config(Writer& w, const slicing::SliceConfig& config) {
  w.u32(config.slice_count);
  w.u64(config.epoch);
}

slicing::SliceConfig decode_config(Reader& r) {
  slicing::SliceConfig config;
  config.slice_count = r.u32();
  config.epoch = r.u64();
  return config;
}

}  // namespace

// ---- inner payloads ---------------------------------------------------------

Payload encode_inner(const PutRequest& req) {
  Writer w(1 + 2 * sizeof(std::uint64_t) + sizeof(std::uint64_t) +
           store::encoded_size(req.object));
  w.u8(static_cast<std::uint8_t>(InnerKind::kPut));
  w.request_id(req.rid);
  w.node_id(req.client);
  encode(w, req.object);
  return w.take_payload();
}

Payload encode_inner(const GetRequest& req) {
  Writer w(1 + 3 * sizeof(std::uint64_t) + sizeof(std::uint32_t) +
           req.key.size() + 1 + sizeof(std::uint64_t));
  w.u8(static_cast<std::uint8_t>(InnerKind::kGet));
  w.request_id(req.rid);
  w.node_id(req.client);
  w.str(req.key);
  encode_version_opt(w, req.version);
  return w.take_payload();
}

Payload encode_inner(const HandoffRequest& req) {
  Writer w(1 + store::encoded_size(req.object));
  w.u8(static_cast<std::uint8_t>(InnerKind::kHandoff));
  encode(w, req.object);
  return w.take_payload();
}

std::optional<InnerKind> peek_inner_kind(const Payload& payload) {
  if (payload.empty()) return std::nullopt;
  switch (payload.front()) {
    case static_cast<std::uint8_t>(InnerKind::kPut): return InnerKind::kPut;
    case static_cast<std::uint8_t>(InnerKind::kGet): return InnerKind::kGet;
    case static_cast<std::uint8_t>(InnerKind::kHandoff):
      return InnerKind::kHandoff;
    default: return std::nullopt;
  }
}

std::optional<HandoffRequest> decode_handoff(const Payload& payload) {
  Reader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(InnerKind::kHandoff)) {
    return std::nullopt;
  }
  HandoffRequest req;
  req.object = store::decode_object(r);
  if (!r.finish().ok()) return std::nullopt;
  return req;
}

std::optional<PutRequest> decode_put(const Payload& payload) {
  Reader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(InnerKind::kPut)) return std::nullopt;
  PutRequest req;
  req.rid = r.request_id();
  req.client = r.node_id();
  req.object = store::decode_object(r);
  if (!r.finish().ok()) return std::nullopt;
  return req;
}

std::optional<GetRequest> decode_get(const Payload& payload) {
  Reader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(InnerKind::kGet)) return std::nullopt;
  GetRequest req;
  req.rid = r.request_id();
  req.client = r.node_id();
  req.key = r.str();
  req.version = decode_version_opt(r);
  if (!r.finish().ok()) return std::nullopt;
  return req;
}

// ---- direct messages --------------------------------------------------------

Payload encode(const PutAck& msg) {
  Writer w(3 * sizeof(std::uint64_t) + 2 * sizeof(std::uint32_t) +
           msg.key.size() + sizeof(std::uint64_t));
  w.request_id(msg.rid);
  w.node_id(msg.replica);
  w.u32(msg.slice);
  w.str(msg.key);
  w.u64(msg.version);
  return w.take_payload();
}

std::optional<PutAck> decode_put_ack(const Payload& payload) {
  Reader r(payload);
  PutAck msg;
  msg.rid = r.request_id();
  msg.replica = r.node_id();
  msg.slice = r.u32();
  msg.key = r.str();
  msg.version = r.u64();
  if (!r.finish().ok()) return std::nullopt;
  return msg;
}

Payload encode(const GetReply& msg) {
  Writer w(3 * sizeof(std::uint64_t) + sizeof(std::uint32_t) + 1 +
           store::encoded_size(msg.object));
  w.request_id(msg.rid);
  w.node_id(msg.replica);
  w.u32(msg.slice);
  w.boolean(msg.found);
  encode(w, msg.object);
  return w.take_payload();
}

std::optional<GetReply> decode_get_reply(const Payload& payload) {
  Reader r(payload);
  GetReply msg;
  msg.rid = r.request_id();
  msg.replica = r.node_id();
  msg.slice = r.u32();
  msg.found = r.boolean();
  msg.object = store::decode_object(r);
  if (!r.finish().ok()) return std::nullopt;
  return msg;
}

Payload encode(const ReplicatePush& msg) {
  Writer w(store::encoded_size(msg.object));
  encode(w, msg.object);
  return w.take_payload();
}

std::optional<ReplicatePush> decode_replicate_push(const Payload& payload) {
  Reader r(payload);
  ReplicatePush msg;
  msg.object = store::decode_object(r);
  if (!r.finish().ok()) return std::nullopt;
  return msg;
}

// ---- slice advertisement ------------------------------------------------------

Payload encode(const SliceAdvert& msg) {
  Writer w(2 * sizeof(std::uint64_t) + 2 * sizeof(std::uint32_t));
  w.node_id(msg.node);
  w.u32(msg.slice);
  encode_config(w, msg.config);
  return w.take_payload();
}

std::optional<SliceAdvert> decode_slice_advert(const Payload& payload) {
  Reader r(payload);
  SliceAdvert msg;
  msg.node = r.node_id();
  msg.slice = r.u32();
  msg.config = decode_config(r);
  if (!r.finish().ok()) return std::nullopt;
  return msg;
}

// ---- anti-entropy -------------------------------------------------------------

Payload encode_ae_digest(bool is_reply,
                         const std::vector<store::DigestEntry>& entries) {
  std::size_t size = 1 + sizeof(std::uint32_t);
  for (const store::DigestEntry& e : entries) size += store::encoded_size(e);
  Writer w(size);
  w.boolean(is_reply);
  w.vec(entries, [&w](const store::DigestEntry& e) { store::encode(w, e); });
  return w.take_payload();
}

Payload encode(const AeDigest& msg) {
  return encode_ae_digest(msg.is_reply, msg.entries);
}

std::optional<AeDigest> decode_ae_digest(const Payload& payload) {
  Reader r(payload);
  AeDigest msg;
  msg.is_reply = r.boolean();
  msg.entries = r.vec<store::DigestEntry>(
      [&r]() { return store::decode_digest_entry(r); });
  if (!r.finish().ok()) return std::nullopt;
  return msg;
}

Payload encode(const AePull& msg) {
  std::size_t size = sizeof(std::uint32_t);
  for (const store::DigestEntry& e : msg.entries) size += store::encoded_size(e);
  Writer w(size);
  w.vec(msg.entries,
        [&w](const store::DigestEntry& e) { store::encode(w, e); });
  return w.take_payload();
}

std::optional<AePull> decode_ae_pull(const Payload& payload) {
  Reader r(payload);
  AePull msg;
  msg.entries = r.vec<store::DigestEntry>(
      [&r]() { return store::decode_digest_entry(r); });
  if (!r.finish().ok()) return std::nullopt;
  return msg;
}

Payload encode(const AePush& msg) {
  std::size_t size = sizeof(std::uint32_t);
  for (const store::Object& o : msg.objects) size += store::encoded_size(o);
  Writer w(size);
  w.vec(msg.objects, [&w](const store::Object& o) { store::encode(w, o); });
  return w.take_payload();
}

std::optional<AePush> decode_ae_push(const Payload& payload) {
  Reader r(payload);
  AePush msg;
  msg.objects =
      r.vec<store::Object>([&r]() { return store::decode_object(r); });
  if (!r.finish().ok()) return std::nullopt;
  return msg;
}

// ---- state transfer ------------------------------------------------------------

Payload encode(const StRequest& msg) {
  Writer w(sizeof(std::uint32_t) + store::encoded_size(msg.cursor));
  w.u32(msg.slice);
  store::encode(w, msg.cursor);
  return w.take_payload();
}

std::optional<StRequest> decode_st_request(const Payload& payload) {
  Reader r(payload);
  StRequest msg;
  msg.slice = r.u32();
  msg.cursor = store::decode_digest_entry(r);
  if (!r.finish().ok()) return std::nullopt;
  return msg;
}

Payload encode(const StReply& msg) {
  std::size_t size = sizeof(std::uint32_t) + 1;
  for (const store::Object& o : msg.objects) size += store::encoded_size(o);
  Writer w(size);
  w.u32(msg.slice);
  w.boolean(msg.done);
  w.vec(msg.objects, [&w](const store::Object& o) { store::encode(w, o); });
  return w.take_payload();
}

std::optional<StReply> decode_st_reply(const Payload& payload) {
  Reader r(payload);
  StReply msg;
  msg.slice = r.u32();
  msg.done = r.boolean();
  msg.objects =
      r.vec<store::Object>([&r]() { return store::decode_object(r); });
  if (!r.finish().ok()) return std::nullopt;
  return msg;
}

}  // namespace dataflasks::core
