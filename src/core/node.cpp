#include "core/node.hpp"

#include "obs/metrics.hpp"

namespace dataflasks::core {

Node::Node(NodeId id, double capacity, runtime::Runtime& rt,
           net::Transport& transport, NodeOptions options, std::uint64_t seed,
           std::unique_ptr<store::Store> durable_store)
    : id_(id),
      capacity_(capacity),
      runtime_(rt),
      transport_(transport),
      options_(options),
      rng_(seed),
      store_(std::move(durable_store)),
      store_is_volatile_(store_ == nullptr) {
  if (store_ == nullptr) store_ = std::make_unique<store::MemStore>();
}

Node::~Node() {
  if (running_) crash();
}

void Node::build_components() {
  // Every start gets fresh, independent randomness: a restarted node must
  // not replay its previous gossip choices.
  Rng boot = rng_.fork(0xb007);

  if (options_.admission.enabled) {
    admission_ = std::make_unique<AdmissionController>(
        [this]() { return runtime_.now(); }, options_.admission, metrics_);
    if (load_probe_) admission_->set_load_probe(load_probe_);
  } else {
    admission_.reset();
  }

  switch (options_.pss_kind) {
    case PssKind::kCyclon:
      pss_ = std::make_unique<pss::Cyclon>(id_, transport_, boot.fork(1),
                                           options_.cyclon);
      break;
    case PssKind::kNewscast:
      pss_ = std::make_unique<pss::Newscast>(id_, transport_, boot.fork(1),
                                             options_.newscast);
      break;
  }

  // Gossip-learned routing: every shuffle advertises our endpoint and
  // feeds every received descriptor's endpoint into the transport's
  // address table, so addresses heal under churn the way membership does.
  // No-ops on transports without an address table (the simulator).
  pss_->set_self_endpoint_provider(
      [this]() { return transport_.local_endpoint(); });
  pss_->set_descriptor_listener(
      [this](const std::vector<pss::NodeDescriptor>& batch) {
        for (const pss::NodeDescriptor& d : batch) {
          if (d.id != id_ && d.endpoint.has_value()) {
            transport_.learn_endpoint(d.id, *d.endpoint);
          }
        }
      });

  std::unique_ptr<slicing::Slicer> slicer;
  switch (options_.slicer_kind) {
    case SlicerKind::kSliver:
      slicer = std::make_unique<slicing::Sliver>(
          id_, capacity_, transport_, *pss_, boot.fork(2),
          options_.slice_config, options_.sliver);
      break;
    case SlicerKind::kOrdered:
      slicer = std::make_unique<slicing::OrderedSlicing>(
          id_, capacity_, transport_, *pss_, boot.fork(2),
          options_.slice_config);
      break;
  }

  slices_ = std::make_unique<SliceManager>(id_, transport_, *pss_,
                                           std::move(slicer), boot.fork(3),
                                           options_.slice_manager);

  requests_ = std::make_unique<RequestHandler>(
      id_, transport_, *pss_, *slices_, *store_, boot.fork(4),
      [this]() { return runtime_.now(); }, options_.request, metrics_);
  // TTL deadlines are stamped against the wall clock so replicas in other
  // processes agree on them (the simulator's wall_now() is its sim clock,
  // keeping sim tests deterministic).
  requests_->set_wall_clock([this]() { return runtime_.wall_now(); });
  requests_->set_stats_provider(
      stats_fn_ ? stats_fn_ : [this]() {
        // Default snapshot: this node's event-counter registry, rendered in
        // the same Prometheus text form the server's /metrics endpoint uses.
        return obs::render_node_counters(metrics_, "df_node_events_total");
      });
  requests_->set_hot_metrics(hot_metrics_);
  requests_->set_admission(admission_.get());

  anti_entropy_ = std::make_unique<AntiEntropy>(
      id_, transport_, *store_, boot.fork(5), options_.anti_entropy,
      [this]() { return slices_->slice(); },
      [this](const Key& key) { return slices_->key_slice(key); },
      [this](std::size_t count) { return slices_->slice_peers(count); },
      metrics_);

  if (options_.size_estimation) {
    size_estimator_ = std::make_unique<aggregation::SizeEstimator>(
        id_, transport_, *pss_, boot.fork(7), options_.size_estimator);
  } else {
    size_estimator_.reset();
  }

  state_transfer_ = std::make_unique<StateTransfer>(
      id_, transport_, *store_, boot.fork(6), options_.state_transfer,
      [this]() { return slices_->slice(); },
      [this](const Key& key) { return slices_->key_slice(key); },
      [this](std::size_t count) { return slices_->slice_peers(count); },
      metrics_);

  slices_->set_config_change_listener(
      [this](const slicing::SliceConfig& config) {
        requests_->on_config_changed(config);
      });
  slices_->set_slice_change_listener([this](SliceId, SliceId) {
    metrics_.counter("node.slice_changes").add();
    if (options_.state_transfer_on_slice_change) {
      state_transfer_->begin();
    }
  });
}

void Node::start(const std::vector<NodeId>& seeds) {
  ensure(!running_, "Node::start on a running node");

  if (store_is_volatile_) {
    // A fresh process has an empty volatile store.
    store_ = std::make_unique<store::MemStore>();
  }
  build_components();
  pss_->bootstrap(seeds);

  transport_.register_handler(
      id_, [this](const net::Message& msg) { dispatch(msg); });
  start_timers();
  running_ = true;
  metrics_.counter("node.starts").add();

  // A (re)joining node pulls its slice's data as soon as it knows peers.
  if (options_.state_transfer_on_slice_change) {
    state_transfer_->begin();
  }
}

void Node::start_timers() {
  auto jitter = [this](SimTime period) {
    return rng_.next_in(0, period);  // desynchronize cycles across nodes
  };

  timers_.push_back(runtime_.schedule_periodic(
      jitter(options_.pss_period), options_.pss_period,
      [this]() { pss_->tick(); }));
  timers_.push_back(runtime_.schedule_periodic(
      jitter(options_.slicing_period), options_.slicing_period,
      [this]() { slices_->tick_slicing(); }));
  timers_.push_back(runtime_.schedule_periodic(
      jitter(options_.advert_period), options_.advert_period,
      [this]() { slices_->tick_advertisement(); }));
  if (options_.anti_entropy_enabled) {
    timers_.push_back(runtime_.schedule_periodic(
        jitter(options_.ae_period), options_.ae_period,
        [this]() { anti_entropy_->tick(); }));
  }
  timers_.push_back(runtime_.schedule_periodic(
      jitter(options_.st_tick_period), options_.st_tick_period,
      [this]() { state_transfer_->tick(); }));
  if (options_.request.hinted_handoff) {
    timers_.push_back(runtime_.schedule_periodic(
        jitter(options_.handoff_period), options_.handoff_period,
        [this]() { requests_->tick_maintenance(); }));
  }
  if (options_.tombstone_grace > 0) {
    timers_.push_back(runtime_.schedule_periodic(
        jitter(options_.tombstone_gc_period), options_.tombstone_gc_period,
        [this]() {
          const std::size_t dropped = store_->gc_tombstones(
              runtime_.now(), options_.tombstone_grace);
          if (dropped > 0) {
            metrics_.counter("node.tombstones_gced").add(dropped);
          }
        }));
  }
  if (options_.expiry_reap_period > 0) {
    timers_.push_back(runtime_.schedule_periodic(
        jitter(options_.expiry_reap_period), options_.expiry_reap_period,
        [this]() {
          const store::ReapStats reaped =
              store_->reap(runtime_.wall_now(), options_.max_store_bytes);
          if (reaped.expired > 0) {
            metrics_.counter("node.keys_expired").add(reaped.expired);
          }
          if (reaped.evicted > 0) {
            metrics_.counter("node.keys_evicted").add(reaped.evicted);
          }
        }));
  }
  if (options_.compact_period > 0) {
    timers_.push_back(runtime_.schedule_periodic(
        jitter(options_.compact_period), options_.compact_period,
        [this]() {
          const auto reclaimed = store_->compact_storage();
          if (!reclaimed.ok()) {
            // Compaction failure is not fatal (the live log keeps working);
            // it is however the kind of quiet disk trouble operators need a
            // counter for.
            metrics_.counter("node.compact_failures").add();
            return;
          }
          metrics_.counter("node.compactions").add();
          metrics_.counter("node.compact_bytes_reclaimed")
              .add(reclaimed.value());
        }));
  }
  if (size_estimator_ != nullptr) {
    timers_.push_back(runtime_.schedule_periodic(
        jitter(options_.size_estimation_period),
        options_.size_estimation_period,
        [this]() { size_estimator_->tick(); }));
  }
  if (admission_ != nullptr) {
    // No jitter: the tick measures its own lateness (the loop-lag overload
    // signal), so the first fire must land exactly one period out.
    timers_.push_back(runtime_.schedule_periodic(
        options_.admission.tick_period, options_.admission.tick_period,
        [this]() { admission_->tick(); }));
  }
}

void Node::crash() {
  ensure(running_, "Node::crash on a stopped node");
  for (auto& timer : timers_) timer.cancel();
  timers_.clear();
  transport_.unregister_handler(id_);
  running_ = false;
  metrics_.counter("node.crashes").add();
  if (store_is_volatile_) {
    static_cast<store::MemStore&>(*store_).clear();
  }
}

void Node::dispatch(const net::Message& msg) {
  if (!running_) return;
  // Route by type range first: at scale this runs once per delivered
  // message, and probing every subsystem in sequence doubles the dispatch
  // cost for the most frequent (gossip) traffic.
  switch (msg.category()) {
    case net::MsgCategory::kPeerSampling:
      if (maintenance_shed()) return;
      if (pss_->handle(msg)) return;
      break;
    case net::MsgCategory::kSlicing:
      if (maintenance_shed()) return;
      if (slices_->handle(msg)) return;
      // Size-estimation gossip rides in the slicing type range.
      if (size_estimator_ != nullptr && size_estimator_->handle(msg)) return;
      break;
    case net::MsgCategory::kRequest:
      // Client-work admission happens inside the request handler (it can
      // answer with an explicit kOverloaded frame; dropping here would be
      // the silent loss this subsystem exists to remove).
      if (requests_->handle(msg)) return;
      break;
    case net::MsgCategory::kAntiEntropy:
      if (maintenance_shed()) return;
      // State transfer shares the anti-entropy type range.
      if (anti_entropy_->handle(msg)) return;
      if (state_transfer_->handle(msg)) return;
      break;
    default:
      break;
  }
  metrics_.counter("node.unhandled_messages").add();
}

bool Node::maintenance_shed() {
  if (admission_ == nullptr) return false;
  if (admission_->admit(WorkClass::kMaintenance).admit) return false;
  // Dropping gossip/anti-entropy has no reply path; the trickle admitted
  // above is what keeps membership and repair converging under overload.
  metrics_.counter("node.maintenance_shed").add();
  return true;
}

void Node::add_contact(NodeId contact) {
  if (!running_ || contact == id_ || !contact.valid()) return;
  pss_->bootstrap({contact});
}

void Node::set_stats_provider(RequestHandler::StatsFn fn) {
  stats_fn_ = std::move(fn);
  if (requests_) {
    requests_->set_stats_provider(
        stats_fn_ ? stats_fn_ : [this]() {
          return obs::render_node_counters(metrics_, "df_node_events_total");
        });
  }
}

void Node::set_op_metrics(const OpHotMetrics* hot) {
  hot_metrics_ = hot;
  if (requests_) requests_->set_hot_metrics(hot_metrics_);
}

void Node::set_load_probe(AdmissionController::LoadProbeFn probe) {
  load_probe_ = std::move(probe);
  if (admission_) admission_->set_load_probe(load_probe_);
}

void Node::propose_slice_count(std::uint32_t slice_count) {
  slicing::SliceConfig config = slices_->config();
  config.slice_count = slice_count;
  ++config.epoch;
  slices_->adopt_config(config);
}

}  // namespace dataflasks::core
