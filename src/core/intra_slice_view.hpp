// Slice-local membership (paper §IV-B: "we consider a Peer Sampling Service
// intra-slice"). Built by filtering slice advertisements out of the gossip
// stream: entries for this node's own slice feed intra-slice dissemination
// and anti-entropy partner selection; one recent contact per *other* slice
// is kept as a routing directory (the §VII cache optimization).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace dataflasks::core {

struct IntraSliceViewOptions {
  std::size_t capacity = 32;          ///< max same-slice entries
  std::uint32_t max_entry_age = 16;   ///< ticks before an entry expires
  std::size_t directory_capacity = 64;  ///< max other-slice contacts
};

class IntraSliceView {
 public:
  IntraSliceView(NodeId self, IntraSliceViewOptions options, Rng rng);

  /// Records that `node` claims to be in `slice`. `my_slice` filters which
  /// entries belong in the slice view vs. the directory.
  void observe(NodeId node, SliceId slice, SliceId my_slice);

  /// Ages entries and expires stale ones; call once per advertisement period.
  void tick();

  /// Drops everything slice-local (the node changed slice).
  void reset_slice_entries();

  /// Up to `count` distinct same-slice peers, uniformly sampled.
  [[nodiscard]] std::vector<NodeId> peers(std::size_t count);

  [[nodiscard]] std::vector<NodeId> all_peers() const;
  [[nodiscard]] std::size_t size() const { return members_.size(); }

  /// A recently observed contact in `slice`, if any (routing shortcut).
  [[nodiscard]] std::optional<NodeId> directory_lookup(SliceId slice) const;

  /// Forget a peer everywhere (e.g. it stopped responding).
  void forget(NodeId node);

 private:
  struct MemberEntry {
    std::uint32_t last_seen = 0;  ///< tick count at the latest observation
  };
  struct DirectoryEntry {
    NodeId node;
    std::uint32_t last_seen = 0;
  };

  /// Rebuilds member_list_ (sorted member ids) when membership changed.
  void refresh_member_list() const;

  NodeId self_;
  IntraSliceViewOptions options_;
  Rng rng_;
  std::unordered_map<NodeId, MemberEntry> members_;
  std::unordered_map<SliceId, DirectoryEntry> directory_;
  std::uint32_t tick_count_ = 0;
  // Cached sorted member ids: peers() is called on every relay and
  // anti-entropy round, and rebuilding + sorting the list per call was a
  // measurable share of large-run wall time. Invalidated on membership
  // mutation only.
  mutable std::vector<NodeId> member_list_;
  mutable bool member_list_dirty_ = false;
};

}  // namespace dataflasks::core
