// A DataFlasks node (paper Fig. 2): Slice Manager + Peer Sampling + Request
// Handler + Data Store, plus our completions of the paper's open problems
// (anti-entropy replication repair and slice state transfer). This is the
// composition root: it owns the components, schedules their periodic ticks
// on the runtime, and dispatches incoming messages. The node is
// runtime-agnostic: the same code runs over the discrete-event simulator or
// over the wall clock as a standalone UDP process.
#pragma once

#include <memory>
#include <vector>

#include "aggregation/size_estimator.hpp"
#include "common/metrics.hpp"
#include "core/admission_controller.hpp"
#include "core/anti_entropy.hpp"
#include "core/request_handler.hpp"
#include "core/slice_manager.hpp"
#include "core/state_transfer.hpp"
#include "net/transport.hpp"
#include "pss/cyclon.hpp"
#include "pss/newscast.hpp"
#include "runtime/runtime.hpp"
#include "slicing/ordered_slicing.hpp"
#include "slicing/sliver.hpp"
#include "store/memstore.hpp"

namespace dataflasks::core {

enum class PssKind { kCyclon, kNewscast };
enum class SlicerKind { kSliver, kOrdered };

struct NodeOptions {
  PssKind pss_kind = PssKind::kCyclon;
  pss::CyclonOptions cyclon;
  pss::NewscastOptions newscast;
  SimTime pss_period = 1 * kSeconds;

  /// Sliver converges in a handful of cycles and self-heals under churn, so
  /// it is the default; OrderedSlicing is the literature baseline.
  SlicerKind slicer_kind = SlicerKind::kSliver;
  slicing::SliverOptions sliver;
  SimTime slicing_period = 1 * kSeconds;
  slicing::SliceConfig slice_config{10, 1};

  SliceManagerOptions slice_manager;
  SimTime advert_period = 1 * kSeconds;

  RequestHandlerOptions request;

  AntiEntropyOptions anti_entropy;
  SimTime ae_period = 5 * kSeconds;
  bool anti_entropy_enabled = true;

  StateTransferOptions state_transfer;
  SimTime st_tick_period = 2 * kSeconds;
  bool state_transfer_on_slice_change = true;

  /// Hinted-handoff / foreign-key re-homing cadence (RequestHandler
  /// maintenance; see RequestHandlerOptions::hinted_handoff).
  SimTime handoff_period = 3 * kSeconds;

  /// Tombstone lifetime: a deleted key's tombstone is garbage-collected
  /// once older than this. Must comfortably exceed the anti-entropy
  /// convergence window, or a lagging replica can resurrect the value.
  /// Zero disables GC (tombstones are kept forever).
  SimTime tombstone_grace = 10 * 60 * kSeconds;
  SimTime tombstone_gc_period = 30 * kSeconds;

  /// TTL expiry + eviction cadence. Each tick reaps expired versions and,
  /// when `max_store_bytes` bounds the store, evicts cold keys down to the
  /// budget. Zero disables the timer (objects then expire lazily at read
  /// time only).
  SimTime expiry_reap_period = 1 * kSeconds;
  /// Soft cap on live store bytes for cache workloads; zero = unbounded.
  std::size_t max_store_bytes = 0;
  /// Periodic storage compaction (LogStore file rewrite / StorageEngine
  /// checkpoint). Zero disables (the default for volatile stores, which
  /// have nothing to compact).
  SimTime compact_period = 0;

  /// Admission control / load shedding (off by default: simulator
  /// fixtures opt in; the server config enables it). See
  /// core/admission_controller.hpp for the policy.
  AdmissionOptions admission;

  /// Optional epidemic system-size estimation (extrema propagation): gives
  /// every node ln(N-hat) for fanout sizing without global knowledge.
  bool size_estimation = false;
  aggregation::SizeEstimatorOptions size_estimator;
  SimTime size_estimation_period = 1 * kSeconds;
};

class Node {
 public:
  /// `capacity` is the slicing attribute (paper: "the system will be sliced
  /// according to the individual node storage capacity"). A node with no
  /// injected store uses a volatile MemStore that a crash wipes.
  Node(NodeId id, double capacity, runtime::Runtime& rt,
       net::Transport& transport, NodeOptions options, std::uint64_t seed,
       std::unique_ptr<store::Store> durable_store = nullptr);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Boots the node: builds fresh protocol state, bootstraps the PSS with
  /// `seeds`, registers the message handler and starts periodic timers.
  void start(const std::vector<NodeId>& seeds);

  /// Simulates a crash: timers stop, the handler unregisters and (volatile
  /// store only) all stored data is lost. start() brings the node back with
  /// empty protocol state, like a process restart.
  void crash();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] double capacity() const { return capacity_; }

  [[nodiscard]] SliceId slice() const { return slices_->slice(); }
  [[nodiscard]] const slicing::SliceConfig& slice_config() const {
    return slices_->config();
  }
  [[nodiscard]] SliceId key_slice(const Key& key) const {
    return slices_->key_slice(key);
  }

  [[nodiscard]] store::Store& store() { return *store_; }
  [[nodiscard]] const store::Store& store() const { return *store_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] SliceManager& slices() { return *slices_; }
  [[nodiscard]] pss::PeerSampling& peer_sampling() { return *pss_; }
  [[nodiscard]] RequestHandler& requests() { return *requests_; }

  /// Installs a bootstrap contact discovered after start (e.g. a seed
  /// address probe resolving its node id). No-op when not running.
  void add_contact(NodeId contact);

  /// Injects a message exactly as if the transport had delivered it. The
  /// multi-shard server's router forwards protocol traffic that arrived on
  /// a sibling shard's socket through this door; it must be called on this
  /// node's runtime thread (the router mails a closure that calls it).
  /// Dropped when the node is not running, like a late transport delivery.
  void deliver(const net::Message& msg) {
    if (running_) dispatch(msg);
  }

  /// Re-shards a live system: bumps the config epoch and lets it spread
  /// epidemically through slicing gossip and adverts.
  void propose_slice_count(std::uint32_t slice_count);

  /// Gossip-estimated system size (requires options.size_estimation);
  /// returns 0.0 when estimation is disabled.
  [[nodiscard]] double estimated_system_size() const {
    return size_estimator_ ? size_estimator_->estimate() : 0.0;
  }

  /// Installs the snapshot renderer behind the Operation::stats() admin op.
  /// Without one, stats ops serve this node's event-counter registry in
  /// Prometheus text form. Survives crash()/start() cycles.
  void set_stats_provider(RequestHandler::StatsFn fn);

  /// Hooks the request hot path to per-op-type counters/histograms owned by
  /// the embedder. `hot` must outlive the node; nullptr detaches.
  void set_op_metrics(const OpHotMetrics* hot);

  /// Installs the runtime queue-depth probe feeding admission control
  /// (e.g. RealTimeRuntime::pending_events). Survives crash()/start()
  /// cycles; without one the queue signal reads zero.
  void set_load_probe(AdmissionController::LoadProbeFn probe);

  /// Admission controller (null when options.admission.enabled is false).
  [[nodiscard]] AdmissionController* admission() { return admission_.get(); }
  [[nodiscard]] const AdmissionController* admission() const {
    return admission_.get();
  }

  /// Pull entries requested in the latest anti-entropy exchange (0 =
  /// converged at last contact, or not running).
  [[nodiscard]] std::size_t ae_backlog() const {
    return anti_entropy_ ? anti_entropy_->last_pull_backlog() : 0;
  }

 private:
  void build_components();
  void dispatch(const net::Message& msg);
  void start_timers();
  /// Maintenance-class admission check for one inbound message: true when
  /// the message must be dropped (overloaded, trickle exhausted).
  bool maintenance_shed();

  NodeId id_;
  double capacity_;
  runtime::Runtime& runtime_;
  net::Transport& transport_;
  NodeOptions options_;
  Rng rng_;
  MetricsRegistry metrics_;
  /// Observability hooks outlive crash()/start() component rebuilds; they
  /// are re-applied to the fresh RequestHandler in build_components().
  RequestHandler::StatsFn stats_fn_;
  const OpHotMetrics* hot_metrics_ = nullptr;
  AdmissionController::LoadProbeFn load_probe_;

  std::unique_ptr<store::Store> store_;
  bool store_is_volatile_;

  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<pss::PeerSampling> pss_;
  std::unique_ptr<SliceManager> slices_;
  std::unique_ptr<RequestHandler> requests_;
  std::unique_ptr<AntiEntropy> anti_entropy_;
  std::unique_ptr<StateTransfer> state_transfer_;
  std::unique_ptr<aggregation::SizeEstimator> size_estimator_;

  std::vector<runtime::TimerHandle> timers_;
  bool running_ = false;
};

}  // namespace dataflasks::core
