#include "core/anti_entropy.hpp"

#include <algorithm>

namespace dataflasks::core {

AntiEntropy::AntiEntropy(NodeId self, net::Transport& transport,
                         store::Store& store, Rng rng,
                         AntiEntropyOptions options, SliceFn my_slice,
                         KeySliceFn key_slice, SlicePeersFn slice_peers,
                         MetricsRegistry& metrics)
    : self_(self),
      transport_(transport),
      store_(store),
      rng_(rng),
      options_(options),
      my_slice_(std::move(my_slice)),
      key_slice_(std::move(key_slice)),
      slice_peers_(std::move(slice_peers)),
      metrics_(metrics) {
  ensure(options_.digest_cap > 0, "AntiEntropy: zero digest cap");
  ensure(options_.push_cap > 0, "AntiEntropy: zero push cap");
}

void AntiEntropy::send_digest(NodeId to, bool is_reply) {
  // The store maintains its digest incrementally; under the cap we encode
  // straight from that cached reference — no copy, no materialized vector.
  const std::vector<store::DigestEntry>& digest = store_.digest_entries();
  Payload encoded;
  if (digest.size() > options_.digest_cap) {
    // Random subset: successive rounds cover different parts of the store,
    // so convergence still completes, just over more rounds.
    encoded = encode_ae_digest(is_reply,
                               rng_.sample(digest, options_.digest_cap));
  } else {
    encoded = encode_ae_digest(is_reply, digest);
  }
  transport_.send(net::Message{self_, to, kAeDigest, std::move(encoded)});
  metrics_.counter("ae.digests_sent").add();
}

void AntiEntropy::tick() {
  const auto partners = slice_peers_(1);
  if (partners.empty()) return;
  send_digest(partners.front(), /*is_reply=*/false);
}

bool AntiEntropy::handle(const net::Message& msg) {
  switch (msg.type) {
    case kAeDigest: {
      const auto digest = decode_ae_digest(msg.payload);
      if (digest) handle_digest(msg, *digest);
      return true;
    }
    case kAePull: {
      const auto pull = decode_ae_pull(msg.payload);
      if (pull) handle_pull(msg, *pull);
      return true;
    }
    case kAePush: {
      const auto push = decode_ae_push(msg.payload);
      if (push) handle_push(*push);
      return true;
    }
    default:
      return false;
  }
}

void AntiEntropy::handle_digest(const net::Message& msg,
                                const AeDigest& digest) {
  // Pull whatever the partner has that we miss (and that belongs to us).
  AePull pull;
  const SliceId mine = my_slice_();
  for (const store::DigestEntry& entry : digest.entries) {
    if (key_slice_(entry.key) != mine) continue;
    if (!store_.contains(entry.key, entry.version)) {
      // Tombstone-aware: don't pull versions our own tombstone supersedes —
      // the partner's stale copy of a deleted value would be discarded on
      // arrival anyway (and the partner heals by pulling our tombstone).
      if (const Version tomb = store_.tombstone_version(entry.key);
          tomb != 0 && entry.version <= tomb) {
        metrics_.counter("ae.pulls_skipped_tombstone").add();
        continue;
      }
      pull.entries.push_back(entry);
      if (pull.entries.size() >= options_.push_cap) break;
    }
  }
  last_pull_backlog_ = pull.entries.size();
  if (!pull.entries.empty()) {
    transport_.send(net::Message{self_, msg.src, kAePull, encode(pull)});
    metrics_.counter("ae.pulls_sent").add();
  }

  // Answer the initiating leg with our own digest so repair is symmetric.
  if (!digest.is_reply) {
    send_digest(msg.src, /*is_reply=*/true);
  }
}

void AntiEntropy::handle_pull(const net::Message& msg, const AePull& pull) {
  AePush push;
  for (const store::DigestEntry& entry : pull.entries) {
    auto obj = store_.get(entry.key, entry.version);
    if (!obj.ok()) continue;  // we may have dropped it since the digest
    push.objects.push_back(std::move(obj).value());
    if (push.objects.size() >= options_.push_cap) break;
  }
  if (!push.objects.empty()) {
    transport_.send(net::Message{self_, msg.src, kAePush, encode(push)});
    metrics_.counter("ae.pushes_sent").add();
  }
}

void AntiEntropy::handle_push(const AePush& push) {
  const SliceId mine = my_slice_();
  for (const store::Object& obj : push.objects) {
    if (key_slice_(obj.key) != mine) continue;  // not ours (stale pull)
    if (store_.put(obj).ok()) {
      metrics_.counter("ae.objects_repaired").add();
    }
  }
}

}  // namespace dataflasks::core
