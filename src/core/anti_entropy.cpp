#include "core/anti_entropy.hpp"

#include <algorithm>

#include "common/hash.hpp"

namespace dataflasks::core {

namespace {

/// Identity hash of one digest entry: key hash mixed with the version, so a
/// version bump moves the entry to a (likely) different bucket fingerprint.
std::uint64_t entry_hash(const store::DigestEntry& entry) {
  return hash_combine(stable_key_hash(entry.key), entry.version);
}

/// Buckets sized for ~64 entries each: a 10k-entry store summarizes into
/// ~156 * 8 bytes, and one disagreeing entry costs one ~64-entry bucket of
/// per-key fallback. Clamped so tiny stores still compare meaningfully and
/// huge ones keep the summary under a frame.
std::uint32_t bucket_count_for(std::size_t entries) {
  const std::size_t buckets = entries / 64;
  return static_cast<std::uint32_t>(std::clamp<std::size_t>(buckets, 16, 4096));
}

}  // namespace

AntiEntropy::AntiEntropy(NodeId self, net::Transport& transport,
                         store::Store& store, Rng rng,
                         AntiEntropyOptions options, SliceFn my_slice,
                         KeySliceFn key_slice, SlicePeersFn slice_peers,
                         MetricsRegistry& metrics)
    : self_(self),
      transport_(transport),
      store_(store),
      rng_(rng),
      options_(options),
      my_slice_(std::move(my_slice)),
      key_slice_(std::move(key_slice)),
      slice_peers_(std::move(slice_peers)),
      metrics_(metrics) {
  ensure(options_.digest_cap > 0, "AntiEntropy: zero digest cap");
  ensure(options_.push_cap > 0, "AntiEntropy: zero push cap");
}

void AntiEntropy::send(NodeId to, std::uint16_t type, Payload payload) {
  // Every outbound AE byte is counted: the O(diff) claim is asserted
  // against this counter, not hand-waved.
  metrics_.counter("ae.bytes_sent").add(payload.size());
  transport_.send(net::Message{self_, to, type, std::move(payload)});
}

void AntiEntropy::send_digest(NodeId to, bool is_reply) {
  // The store maintains its digest incrementally; under the cap we encode
  // straight from that cached reference — no copy, no materialized vector.
  const std::vector<store::DigestEntry>& digest = store_.digest_entries();
  Payload encoded;
  if (digest.size() > options_.digest_cap) {
    // Random subset: successive rounds cover different parts of the store,
    // so convergence still completes, just over more rounds.
    encoded = encode_ae_digest(is_reply,
                               rng_.sample(digest, options_.digest_cap));
  } else {
    encoded = encode_ae_digest(is_reply, digest);
  }
  send(to, kAeDigest, std::move(encoded));
  metrics_.counter("ae.digests_sent").add();
}

const AntiEntropy::SummaryState& AntiEntropy::summary_state(
    std::uint32_t bucket_count) {
  const std::uint64_t rev = store_.mutation_rev();
  const SliceId mine = my_slice_();
  if (summary_.valid && summary_.rev == rev && summary_.slice == mine &&
      summary_.bucket_count == bucket_count) {
    return summary_;
  }
  summary_.rev = rev;
  summary_.slice = mine;
  summary_.bucket_count = bucket_count;
  summary_.entry_count = 0;
  summary_.fingerprints.assign(bucket_count, 0);
  for (const store::DigestEntry& entry : store_.digest_entries()) {
    if (key_slice_(entry.key) != mine) continue;  // foreign stragglers
    const std::uint64_t h = entry_hash(entry);
    summary_.fingerprints[hash_to_bucket(h, bucket_count)] ^= h;
    ++summary_.entry_count;
  }
  summary_.valid = true;
  return summary_;
}

std::vector<store::DigestEntry> AntiEntropy::entries_in_buckets(
    std::uint32_t bucket_count, const std::vector<std::uint32_t>& buckets) {
  const SliceId mine = my_slice_();
  // Membership mask instead of find(): a cold replica disagrees on every
  // bucket, and O(entries * buckets) would make its first rounds quadratic.
  std::vector<char> wanted(bucket_count, 0);
  for (const std::uint32_t b : buckets) wanted[b] = 1;
  // Under the cap, reservoir-sample instead of truncating: a deterministic
  // first-N prefix repeats the same entries every round, and once the
  // partner holds exactly those the exchange stops making progress while
  // the buckets still disagree. A uniform draw keeps successive rounds
  // covering different parts of the diff (same reasoning as send_digest),
  // at O(cap) extra memory.
  std::vector<store::DigestEntry> out;
  std::size_t matched = 0;
  for (const store::DigestEntry& entry : store_.digest_entries()) {
    if (key_slice_(entry.key) != mine) continue;
    if (wanted[hash_to_bucket(entry_hash(entry), bucket_count)] == 0) continue;
    if (out.size() < options_.digest_cap) {
      out.push_back(entry);
    } else if (const std::uint64_t j = rng_.next_below(matched + 1);
               j < options_.digest_cap) {
      out[j] = entry;
    }
    ++matched;
  }
  return out;
}

void AntiEntropy::send_summary(NodeId to) {
  const SummaryState& state =
      summary_state(bucket_count_for(store_.digest_entries().size()));
  AeSummary msg;
  msg.bucket_count = state.bucket_count;
  msg.entry_count = state.entry_count;
  msg.fingerprints = state.fingerprints;
  send(to, kAeSummary, encode(msg));
  metrics_.counter("ae.summaries_sent").add();
}

void AntiEntropy::tick() {
  const auto partners = slice_peers_(1);
  if (partners.empty()) return;
  if (options_.summary_protocol &&
      store_.digest_entries().size() >= options_.summary_min_entries) {
    send_summary(partners.front());
  } else {
    send_digest(partners.front(), /*is_reply=*/false);
  }
}

bool AntiEntropy::handle(const net::Message& msg) {
  switch (msg.type) {
    case kAeDigest: {
      const auto digest = decode_ae_digest(msg.payload);
      if (digest) handle_digest(msg, *digest);
      return true;
    }
    case kAeSummary: {
      const auto summary = decode_ae_summary(msg.payload);
      if (summary) handle_summary(msg, *summary);
      return true;
    }
    case kAeBucketDigest: {
      const auto digest = decode_ae_bucket_digest(msg.payload);
      if (digest) handle_bucket_digest(msg, *digest);
      return true;
    }
    case kAePull: {
      const auto pull = decode_ae_pull(msg.payload);
      if (pull) handle_pull(msg, *pull);
      return true;
    }
    case kAePush: {
      const auto push = decode_ae_push(msg.payload);
      if (push) handle_push(*push);
      return true;
    }
    default:
      return false;
  }
}

void AntiEntropy::pull_missing(
    NodeId from, const std::vector<store::DigestEntry>& entries) {
  AePull pull;
  const SliceId mine = my_slice_();
  for (const store::DigestEntry& entry : entries) {
    if (key_slice_(entry.key) != mine) continue;
    if (!store_.contains(entry.key, entry.version)) {
      // Tombstone-aware: don't pull versions our own tombstone supersedes —
      // the partner's stale copy of a deleted value would be discarded on
      // arrival anyway (and the partner heals by pulling our tombstone).
      if (const Version tomb = store_.tombstone_version(entry.key);
          tomb != 0 && entry.version <= tomb) {
        metrics_.counter("ae.pulls_skipped_tombstone").add();
        continue;
      }
      pull.entries.push_back(entry);
      if (pull.entries.size() >= options_.push_cap) break;
    }
  }
  last_pull_backlog_ = pull.entries.size();
  if (!pull.entries.empty()) {
    send(from, kAePull, encode(pull));
    metrics_.counter("ae.pulls_sent").add();
  }
}

void AntiEntropy::handle_digest(const net::Message& msg,
                                const AeDigest& digest) {
  // Pull whatever the partner has that we miss (and that belongs to us).
  pull_missing(msg.src, digest.entries);

  // Answer the initiating leg with our own digest so repair is symmetric.
  if (!digest.is_reply) {
    send_digest(msg.src, /*is_reply=*/true);
  }
}

void AntiEntropy::handle_summary(const net::Message& msg,
                                 const AeSummary& summary) {
  // Compare under the SENDER's bucketing, so both sides fold the same
  // entries into the same positions.
  const SummaryState& mine = summary_state(summary.bucket_count);
  std::vector<std::uint32_t> disagreeing;
  for (std::uint32_t b = 0; b < summary.bucket_count; ++b) {
    if (mine.fingerprints[b] != summary.fingerprints[b]) {
      disagreeing.push_back(b);
    }
  }
  if (disagreeing.empty()) {
    // Converged: the whole round cost one summary each way and nothing
    // else. This is the O(diff) steady state.
    metrics_.counter("ae.summaries_converged").add();
    last_pull_backlog_ = 0;
    return;
  }

  AeBucketDigest reply;
  reply.is_reply = false;
  reply.bucket_count = summary.bucket_count;
  reply.buckets = std::move(disagreeing);
  reply.entries = entries_in_buckets(summary.bucket_count, reply.buckets);
  send(msg.src, kAeBucketDigest, encode(reply));
  metrics_.counter("ae.bucket_digests_sent").add();
}

void AntiEntropy::handle_bucket_digest(const net::Message& msg,
                                       const AeBucketDigest& digest) {
  // Round 2: the entries are per-key again, so the legacy pull logic
  // applies verbatim.
  pull_missing(msg.src, digest.entries);

  if (!digest.is_reply) {
    // We initiated with a summary; answer with our entries in the same
    // disagreeing buckets so the partner can pull what *it* misses.
    AeBucketDigest reply;
    reply.is_reply = true;
    reply.bucket_count = digest.bucket_count;
    reply.buckets = digest.buckets;
    reply.entries = entries_in_buckets(digest.bucket_count, digest.buckets);
    send(msg.src, kAeBucketDigest, encode(reply));
    metrics_.counter("ae.bucket_digests_sent").add();
  }
}

void AntiEntropy::handle_pull(const net::Message& msg, const AePull& pull) {
  AePush push;
  for (const store::DigestEntry& entry : pull.entries) {
    auto obj = store_.get(entry.key, entry.version);
    if (!obj.ok()) continue;  // we may have dropped it since the digest
    push.objects.push_back(std::move(obj).value());
    if (push.objects.size() >= options_.push_cap) break;
  }
  if (!push.objects.empty()) {
    send(msg.src, kAePush, encode(push));
    metrics_.counter("ae.pushes_sent").add();
  }
}

void AntiEntropy::handle_push(const AePush& push) {
  const SliceId mine = my_slice_();
  for (const store::Object& obj : push.objects) {
    if (key_slice_(obj.key) != mine) continue;  // not ours (stale pull)
    if (store_.put(obj).ok()) {
      metrics_.counter("ae.objects_repaired").add();
    }
  }
}

}  // namespace dataflasks::core
