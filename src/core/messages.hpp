// DataFlasks protocol messages: client requests, replica traffic,
// anti-entropy and state transfer, plus slice advertisements. Each struct
// has an explicit codec; decoders return nullopt on malformed input.
#pragma once

#include <cstdint>
#include <optional>

#include "common/serialize.hpp"
#include "common/types.hpp"
#include "net/message.hpp"
#include "slicing/slice_map.hpp"
#include "store/object.hpp"

namespace dataflasks::core {

// ---- message type tags ----------------------------------------------------
// Request-category traffic (counted by the paper's figures):
constexpr std::uint16_t kClientPut = net::kRequestTypeBase + 8;
constexpr std::uint16_t kClientGet = net::kRequestTypeBase + 9;
constexpr std::uint16_t kPutAck = net::kRequestTypeBase + 10;
constexpr std::uint16_t kGetReply = net::kRequestTypeBase + 11;
constexpr std::uint16_t kReplicatePush = net::kRequestTypeBase + 12;
// Maintenance traffic:
constexpr std::uint16_t kSliceAdvert = net::kSlicingTypeBase + 4;
constexpr std::uint16_t kAeDigest = net::kAntiEntropyTypeBase + 0;
constexpr std::uint16_t kAePull = net::kAntiEntropyTypeBase + 1;
constexpr std::uint16_t kAePush = net::kAntiEntropyTypeBase + 2;
constexpr std::uint16_t kStRequest = net::kAntiEntropyTypeBase + 3;
constexpr std::uint16_t kStReply = net::kAntiEntropyTypeBase + 4;

// ---- inner payloads carried by the spray router ----------------------------

enum class InnerKind : std::uint8_t { kPut = 1, kGet = 2, kHandoff = 3 };

/// A write travelling toward its slice. Carries the full object plus enough
/// routing state for any slice member to acknowledge the client directly.
struct PutRequest {
  RequestId rid;
  NodeId client;
  store::Object object;
};

/// A read travelling toward its slice. `version == nullopt` asks for the
/// latest version the replica knows.
struct GetRequest {
  RequestId rid;
  NodeId client;
  Key key;
  std::optional<Version> version;
};

/// An object being re-homed to its slice without a waiting client: hinted
/// handoff for replicas that landed on the wrong node (stale slice views,
/// slice changes). No ack is produced; durability is restored by storage at
/// the slice plus anti-entropy.
struct HandoffRequest {
  store::Object object;
};

[[nodiscard]] Payload encode_inner(const PutRequest& req);
[[nodiscard]] Payload encode_inner(const GetRequest& req);
[[nodiscard]] Payload encode_inner(const HandoffRequest& req);
[[nodiscard]] std::optional<InnerKind> peek_inner_kind(const Payload& payload);
[[nodiscard]] std::optional<PutRequest> decode_put(const Payload& payload);
[[nodiscard]] std::optional<GetRequest> decode_get(const Payload& payload);
[[nodiscard]] std::optional<HandoffRequest> decode_handoff(
    const Payload& payload);

// ---- direct (unicast) messages ---------------------------------------------

/// Replica -> client: the object was stored. Carries the replica's slice so
/// slice-aware load balancers can learn the mapping (paper §VII).
struct PutAck {
  RequestId rid;
  NodeId replica;
  SliceId slice = 0;
  Key key;
  Version version = 0;
};

/// Replica -> client: read result. `found == false` is an authoritative miss
/// from a replica of the key's slice (the key/version is not stored there).
struct GetReply {
  RequestId rid;
  NodeId replica;
  SliceId slice = 0;
  bool found = false;
  store::Object object;
};

/// Immediate redundancy push: the delivering replica copies a fresh write to
/// a few slice-mates without waiting for anti-entropy.
struct ReplicatePush {
  store::Object object;
};

[[nodiscard]] Payload encode(const PutAck& msg);
[[nodiscard]] Payload encode(const GetReply& msg);
[[nodiscard]] Payload encode(const ReplicatePush& msg);
[[nodiscard]] std::optional<PutAck> decode_put_ack(const Payload& payload);
[[nodiscard]] std::optional<GetReply> decode_get_reply(const Payload& payload);
[[nodiscard]] std::optional<ReplicatePush> decode_replicate_push(
    const Payload& payload);

// ---- slice advertisement (maintenance) --------------------------------------

/// Periodic gossip: "node X is in slice S under config C". Feeds the
/// intra-slice views and the slice directory used for routing shortcuts.
struct SliceAdvert {
  NodeId node;
  SliceId slice = 0;
  slicing::SliceConfig config;
};

[[nodiscard]] Payload encode(const SliceAdvert& msg);
[[nodiscard]] std::optional<SliceAdvert> decode_slice_advert(
    const Payload& payload);

// ---- anti-entropy -----------------------------------------------------------

/// Digest exchange: `is_reply` distinguishes the answer leg (a reply must
/// not trigger another reply). Entries may be a random sample when the
/// store exceeds the digest cap.
struct AeDigest {
  bool is_reply = false;
  std::vector<store::DigestEntry> entries;
};

struct AePull {
  std::vector<store::DigestEntry> entries;
};

struct AePush {
  std::vector<store::Object> objects;
};

[[nodiscard]] Payload encode(const AeDigest& msg);
/// Encode an AeDigest without materializing the struct: lets anti-entropy
/// serialize straight from the store's cached digest reference.
[[nodiscard]] Payload encode_ae_digest(bool is_reply,
                                       const std::vector<store::DigestEntry>& entries);
[[nodiscard]] Payload encode(const AePull& msg);
[[nodiscard]] Payload encode(const AePush& msg);
[[nodiscard]] std::optional<AeDigest> decode_ae_digest(const Payload& payload);
[[nodiscard]] std::optional<AePull> decode_ae_pull(const Payload& payload);
[[nodiscard]] std::optional<AePush> decode_ae_push(const Payload& payload);

// ---- state transfer ----------------------------------------------------------

/// Cursor-paged snapshot request for one slice's data. The cursor is the
/// last (key, version) already received; empty key means "from the start".
struct StRequest {
  SliceId slice = 0;
  store::DigestEntry cursor;
};

struct StReply {
  SliceId slice = 0;
  bool done = false;
  std::vector<store::Object> objects;
};

[[nodiscard]] Payload encode(const StRequest& msg);
[[nodiscard]] Payload encode(const StReply& msg);
[[nodiscard]] std::optional<StRequest> decode_st_request(const Payload& payload);
[[nodiscard]] std::optional<StReply> decode_st_reply(const Payload& payload);

}  // namespace dataflasks::core
