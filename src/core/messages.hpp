// DataFlasks protocol messages: the versioned client operation API,
// replica traffic, anti-entropy and state transfer, plus slice
// advertisements. Each struct has an explicit codec; decoders return
// nullopt on malformed input.
//
// Client <-> node surface (the versioned operation API): a client packs up
// to a datagram's worth of operations into one OpEnvelope (protocol
// version byte + N routed ops); nodes decode the envelope, group the ops
// by target slice, execute or spray each group, and answer with
// OpReplyBatch messages carrying one entry per served operation. A single
// put/get/delete is just an envelope of one — there is no separate
// single-op wire path.
#pragma once

#include <cstdint>
#include <optional>

#include "common/serialize.hpp"
#include "common/types.hpp"
#include "net/message.hpp"
#include "slicing/slice_map.hpp"
#include "store/object.hpp"

namespace dataflasks::core {

// ---- message type tags ----------------------------------------------------
// Request-category traffic (counted by the paper's figures):
constexpr std::uint16_t kOpEnvelope = net::kRequestTypeBase + 8;
constexpr std::uint16_t kOpReplyBatch = net::kRequestTypeBase + 9;
constexpr std::uint16_t kReplicatePush = net::kRequestTypeBase + 12;
constexpr std::uint16_t kVersionMismatch = net::kRequestTypeBase + 13;
constexpr std::uint16_t kOverloaded = net::kRequestTypeBase + 14;
// Maintenance traffic:
constexpr std::uint16_t kSliceAdvert = net::kSlicingTypeBase + 4;
constexpr std::uint16_t kAeDigest = net::kAntiEntropyTypeBase + 0;
constexpr std::uint16_t kAePull = net::kAntiEntropyTypeBase + 1;
constexpr std::uint16_t kAePush = net::kAntiEntropyTypeBase + 2;
constexpr std::uint16_t kStRequest = net::kAntiEntropyTypeBase + 3;
constexpr std::uint16_t kStReply = net::kAntiEntropyTypeBase + 4;
constexpr std::uint16_t kAeSummary = net::kAntiEntropyTypeBase + 5;
constexpr std::uint16_t kAeBucketDigest = net::kAntiEntropyTypeBase + 6;

// ---- the operation variant -------------------------------------------------

/// Wire protocol version of the operation API this build speaks natively.
/// v2 added compare-and-put and the stats admin op (envelope layout
/// unchanged); v3 adds a ttl_ms field to every Put — the first version
/// whose op layout depends on the envelope's protocol byte, so the op
/// codec threads that byte through. One decoder still reads every version
/// back to kOpProtocolMin. A node serves exactly one version and answers
/// envelopes carrying any other with an explicit kVersionMismatch reply so
/// clients can negotiate down (instead of the silent drop v1 servers gave
/// unknown versions).
constexpr std::uint8_t kOpProtocolVersion = 3;
/// Oldest protocol version this build can still encode and serve.
constexpr std::uint8_t kOpProtocolMin = 1;

enum class OpType : std::uint8_t {
  kPut = 1,
  kGet = 2,
  kDelete = 3,
  kCompareAndPut = 4,  ///< conditional write (protocol v2)
  kStats = 5,          ///< admin: metrics snapshot from the contact (v2)
};

/// Lowest protocol version whose envelopes may carry `type`; the client
/// fails ops a negotiated-down connection cannot express.
[[nodiscard]] constexpr std::uint8_t min_protocol_for(OpType type) {
  return type == OpType::kCompareAndPut || type == OpType::kStats ? 2 : 1;
}

struct Operation;
/// Per-op refinement: a plain put rides any version, but a put carrying a
/// TTL needs v3's wire field — against an older server it must fail as
/// `unsupported` rather than silently store forever.
[[nodiscard]] std::uint8_t min_protocol_for(const Operation& op);

/// One client operation. `version` is the write stamp for put/delete/cas
/// and the optional requested version for get (nullopt = latest). `value`
/// is put/cas-only (shared payload, zero-copy through encode/decode).
/// `expected` is cas-only: the version the key must currently be at (0 =
/// "key must not exist"). `ttl_ms` is put-only (protocol v3): 0 = lives
/// forever; otherwise the first storing replica stamps an absolute expiry
/// deadline ttl_ms from its wall clock and the object expires cluster-wide.
struct Operation {
  OpType type = OpType::kGet;
  Key key;
  std::optional<Version> version;
  Payload value;
  Version expected = 0;
  std::uint32_t ttl_ms = 0;

  [[nodiscard]] static Operation put(Key key, Version version, Payload value,
                                     std::uint32_t ttl_ms = 0) {
    Operation op{OpType::kPut, std::move(key), version, std::move(value)};
    op.ttl_ms = ttl_ms;
    return op;
  }
  [[nodiscard]] static Operation get(Key key,
                                     std::optional<Version> version =
                                         std::nullopt) {
    return Operation{OpType::kGet, std::move(key), version, {}};
  }
  [[nodiscard]] static Operation del(Key key, Version version) {
    return Operation{OpType::kDelete, std::move(key), version, {}};
  }
  /// Conditional write: stores (key, version, value) only if the key's
  /// latest live version still equals `expected` at the evaluating replica.
  /// Best-effort in an epidemic store — the check runs against the first
  /// replica the spray reaches, not a total order (DataDroplets owns
  /// ordering above us, paper §III); it is exact in the steady state and a
  /// conflict detector under races, not a linearizable CAS.
  [[nodiscard]] static Operation cas(Key key, Version expected,
                                     Version version, Payload value) {
    return Operation{OpType::kCompareAndPut, std::move(key), version,
                     std::move(value), expected};
  }
  /// Admin op: the contact node answers directly with its rendered metrics
  /// snapshot (Prometheus text) in the reply object's value. Never sprayed.
  [[nodiscard]] static Operation stats() {
    return Operation{OpType::kStats, {}, std::nullopt, {}};
  }
};

/// An operation with its request identity, as routed through the system.
/// rid.client doubles as the issuing client's NodeId — replies go there.
struct RoutedOp {
  RequestId rid;
  Operation op;
};

/// Exact wire sizes (senders use these to keep batched messages under the
/// one-datagram transport ceiling by splitting, instead of having the UDP
/// layer silently drop an oversized frame).
[[nodiscard]] std::size_t encoded_size(const Operation& op);
[[nodiscard]] std::size_t encoded_size(const RoutedOp& routed);

/// Per-message payload budget batched senders chunk against: safely under
/// net::kMaxFramePayload (~60 kB) with headroom for envelope/spray/frame
/// framing around the op list.
constexpr std::size_t kBatchBytesBudget = 48 * 1024;

/// Splits `items` into budget-sized chunks: `size_of(item)` gives each
/// element's encoded size, `flush(chunk)` is called once per non-empty
/// chunk (elements are moved in). An element alone over the budget still
/// ships as its own chunk — the transport's hard cap decides its fate.
template <typename T, typename SizeFn, typename FlushFn>
void chunk_by_budget(std::vector<T>& items, SizeFn&& size_of,
                     FlushFn&& flush) {
  std::vector<T> chunk;
  std::size_t chunk_bytes = 0;
  for (T& item : items) {
    const std::size_t item_bytes = size_of(item);
    if (!chunk.empty() && chunk_bytes + item_bytes > kBatchBytesBudget) {
      flush(chunk);
      chunk.clear();
      chunk_bytes = 0;
    }
    chunk_bytes += item_bytes;
    chunk.push_back(std::move(item));
  }
  if (!chunk.empty()) flush(chunk);
}

/// Client -> contact node: a batch of operations in one datagram.
struct OpEnvelope {
  std::uint8_t protocol = kOpProtocolVersion;
  std::vector<RoutedOp> ops;
};

// ---- inner payloads carried by the spray router ----------------------------

enum class InnerKind : std::uint8_t { kOps = 1, kHandoff = 3 };

/// Operations travelling toward one slice: the contact node regroups an
/// envelope's ops by target slice and sprays each group as a unit, so a
/// batch costs one epidemic dissemination instead of N.
struct OpsRequest {
  std::vector<RoutedOp> ops;
};

/// An object being re-homed to its slice without a waiting client: hinted
/// handoff for replicas that landed on the wrong node (stale slice views,
/// slice changes). No ack is produced; durability is restored by storage at
/// the slice plus anti-entropy.
struct HandoffRequest {
  store::Object object;
};

[[nodiscard]] Payload encode_inner(const OpsRequest& req);
[[nodiscard]] Payload encode_inner(const HandoffRequest& req);
[[nodiscard]] std::optional<InnerKind> peek_inner_kind(const Payload& payload);
[[nodiscard]] std::optional<OpsRequest> decode_ops(const Payload& payload);
[[nodiscard]] std::optional<HandoffRequest> decode_handoff(
    const Payload& payload);

// ---- envelope / reply (unicast) ---------------------------------------------

[[nodiscard]] Payload encode(const OpEnvelope& msg);
[[nodiscard]] std::optional<OpEnvelope> decode_op_envelope(
    const Payload& payload);

/// Per-operation outcome carried in a reply batch.
enum class OpStatus : std::uint8_t {
  kOk = 1,          ///< put/delete/cas stored; get/stats served
  kDeleted = 2,     ///< get: the key is authoritatively deleted (tombstone)
  kSuperseded = 3,  ///< put: discarded — outranked by the key's tombstone
  kCasFailed = 4,   ///< cas: expected version did not match (the reply
                    ///< object carries the key's actual current version;
                    ///< a deleted key fails with the tombstone's version)
  kOverloaded = 5,  ///< the node refused this op under admission control;
                    ///< retry later / elsewhere (whole-envelope shedding
                    ///< uses the cheaper kOverloaded frame instead)
};

struct OpReply {
  RequestId rid;
  OpType type = OpType::kGet;
  OpStatus status = OpStatus::kOk;
  /// Get hit: the full object. Put/delete acks, deleted-gets and
  /// superseded-puts: key and version with an empty value.
  store::Object object;
};

[[nodiscard]] std::size_t encoded_size(const OpReply& reply);

/// Replica -> client: every operation this replica served out of one
/// delivered batch (a single datagram regardless of batch size). Carries
/// the replica's slice so slice-aware load balancers learn the mapping
/// (paper §VII). A replica that cannot serve some get keeps that op
/// spreading inside the slice instead of answering it; the client absorbs
/// the resulting duplicate replies by request id (paper §V).
struct OpReplyBatch {
  NodeId replica;
  SliceId slice = 0;
  std::vector<OpReply> replies;
};

[[nodiscard]] Payload encode(const OpReplyBatch& msg);
[[nodiscard]] std::optional<OpReplyBatch> decode_op_reply_batch(
    const Payload& payload);

/// Immediate redundancy push: the delivering replica copies fresh writes
/// (and tombstones) to a few slice-mates without waiting for anti-entropy.
/// One message carries every object stored out of a delivered batch.
struct ReplicatePush {
  std::vector<store::Object> objects;
};

[[nodiscard]] Payload encode(const ReplicatePush& msg);
[[nodiscard]] std::optional<ReplicatePush> decode_replicate_push(
    const Payload& payload);

/// Server -> client: an envelope carried a protocol version this node does
/// not serve. Explicit negotiation instead of a silent drop: the client
/// re-encodes at `supported` (when it can) without burning a retry
/// attempt. `rid` is the rejected envelope's first op, which is how the
/// client finds the owning batch.
struct VersionMismatch {
  RequestId rid;
  std::uint8_t got = 0;        ///< version the rejected envelope carried
  std::uint8_t supported = 0;  ///< the one version this server serves
};

[[nodiscard]] Payload encode(const VersionMismatch& msg);
[[nodiscard]] std::optional<VersionMismatch> decode_version_mismatch(
    const Payload& payload);

/// Server -> client: the node is overloaded and shed the envelope (or the
/// sprayed batch) owning `rid` without executing any of its ops. Explicit
/// backpressure instead of a silent drop: the client backs off for at
/// least `retry_after_ms`, retries elsewhere, and its load balancer routes
/// around this node. `rid` is the shed batch's first client op, which is
/// how the client finds the owning request (same convention as
/// VersionMismatch). This frame is part of every protocol version the
/// node serves — v1 clients receive it too and must resolve the ops
/// definitively rather than hang.
struct OverloadReply {
  RequestId rid;
  std::uint32_t retry_after_ms = 0;
};

[[nodiscard]] Payload encode(const OverloadReply& msg);
[[nodiscard]] std::optional<OverloadReply> decode_overload_reply(
    const Payload& payload);

// ---- slice advertisement (maintenance) --------------------------------------

/// Periodic gossip: "node X is in slice S under config C". Feeds the
/// intra-slice views and the slice directory used for routing shortcuts.
/// Carries the advertiser's transport endpoint (when it has one), so
/// maintenance traffic refreshes peer addresses just like PSS shuffles do.
struct SliceAdvert {
  NodeId node;
  SliceId slice = 0;
  slicing::SliceConfig config;
  std::optional<Endpoint> endpoint;
};

[[nodiscard]] Payload encode(const SliceAdvert& msg);
[[nodiscard]] std::optional<SliceAdvert> decode_slice_advert(
    const Payload& payload);

// ---- anti-entropy -----------------------------------------------------------

/// Digest exchange: `is_reply` distinguishes the answer leg (a reply must
/// not trigger another reply). Entries may be a random sample when the
/// store exceeds the digest cap. Tombstones appear as ordinary entries, so
/// a replica that missed a delete pulls the tombstone like a missed write.
struct AeDigest {
  bool is_reply = false;
  std::vector<store::DigestEntry> entries;
};

struct AePull {
  std::vector<store::DigestEntry> entries;
};

struct AePush {
  std::vector<store::Object> objects;
};

[[nodiscard]] Payload encode(const AeDigest& msg);
/// Encode an AeDigest without materializing the struct: lets anti-entropy
/// serialize straight from the store's cached digest reference.
[[nodiscard]] Payload encode_ae_digest(bool is_reply,
                                       const std::vector<store::DigestEntry>& entries);
[[nodiscard]] Payload encode(const AePull& msg);
[[nodiscard]] Payload encode(const AePush& msg);
[[nodiscard]] std::optional<AeDigest> decode_ae_digest(const Payload& payload);
[[nodiscard]] std::optional<AePull> decode_ae_pull(const Payload& payload);
[[nodiscard]] std::optional<AePush> decode_ae_push(const Payload& payload);

/// Round 1 of O(diff) anti-entropy: a fixed-size sketch of the sender's
/// slice data instead of every (key, version). Entries hash into
/// `bucket_count` buckets (hash_to_bucket over hash_combine(key_hash,
/// version)); each bucket's fingerprint XOR-folds its entries' hashes, so
/// it is order-independent and incremental. Two converged replicas
/// exchange ~8 bytes per bucket and stop; only buckets whose fingerprints
/// disagree fall back to per-key digests (round 2, AeBucketDigest).
struct AeSummary {
  std::uint32_t bucket_count = 0;
  std::uint64_t entry_count = 0;  ///< entries folded in (disambiguates empty)
  std::vector<std::uint64_t> fingerprints;  ///< one per bucket
};

/// Round 2: per-key digests for the buckets that disagreed. The responder
/// sends its entries in those buckets (is_reply = false); the summary's
/// sender pulls what it misses and answers with its own entries in the
/// same buckets (is_reply = true) so repair stays symmetric. From here the
/// classic AePull / AePush legs finish the exchange.
struct AeBucketDigest {
  bool is_reply = false;
  std::uint32_t bucket_count = 0;          ///< bucketing both sides used
  std::vector<std::uint32_t> buckets;      ///< disagreeing bucket ids
  std::vector<store::DigestEntry> entries; ///< sender's entries in them
};

[[nodiscard]] Payload encode(const AeSummary& msg);
[[nodiscard]] Payload encode(const AeBucketDigest& msg);
[[nodiscard]] std::optional<AeSummary> decode_ae_summary(
    const Payload& payload);
[[nodiscard]] std::optional<AeBucketDigest> decode_ae_bucket_digest(
    const Payload& payload);

// ---- state transfer ----------------------------------------------------------

/// Cursor-paged snapshot request for one slice's data. The cursor is the
/// last (key, version) already received; empty key means "from the start".
struct StRequest {
  SliceId slice = 0;
  store::DigestEntry cursor;
};

/// One snapshot page. Over UDP the donor bounds the page by
/// `core::kBatchBytesBudget` as well as by object count, so a page of large
/// values never exceeds what a UDP frame carries (and a lost reply is
/// recovered by re-requesting from the same cursor — no partial pages to
/// resequence). Over a stream the donor sizes pages against the transport's
/// bigger payload budget and answers one request with a burst of pages,
/// every page but the last marked `continues`: the joiner treats those as
/// progress without issuing a request per page. `done` marks the whole
/// transfer complete.
struct StReply {
  SliceId slice = 0;
  bool done = false;
  bool continues = false;
  std::vector<store::Object> objects;
};

[[nodiscard]] Payload encode(const StRequest& msg);
[[nodiscard]] Payload encode(const StReply& msg);
[[nodiscard]] std::optional<StRequest> decode_st_request(const Payload& payload);
[[nodiscard]] std::optional<StReply> decode_st_reply(const Payload& payload);

}  // namespace dataflasks::core
