#include "core/request_handler.hpp"

#include <map>

#include "common/hash.hpp"

namespace dataflasks::core {

RequestHandler::RequestHandler(NodeId self, net::Transport& transport,
                               pss::PeerSampling& pss, SliceManager& slices,
                               store::Store& store, Rng rng, ClockFn clock,
                               RequestHandlerOptions options,
                               MetricsRegistry& metrics)
    : self_(self),
      transport_(transport),
      slices_(slices),
      store_(store),
      rng_(rng),
      clock_(std::move(clock)),
      options_(options),
      metrics_(metrics) {
  ensure(clock_ != nullptr, "RequestHandler: clock required");
  wall_ = clock_;
  dissemination::SprayOptions spray = options_.spray;
  spray.max_hops = dissemination::adaptive_ttl(
      spray.global_fanout, slices_.config().slice_count, options_.ttl_beta);

  router_ = std::make_unique<dissemination::SprayRouter>(
      self, transport, pss, rng_.fork(0x0f0e),
      spray,
      /*current_slice=*/[this]() { return slices_.slice(); },
      /*slice_peers=*/
      [this](std::size_t count) { return slices_.slice_peers(count); },
      /*deliver=*/
      [this](const Payload& payload, SliceId target, NodeId origin) {
        return deliver(payload, target, origin);
      },
      /*directory=*/
      [this](SliceId slice) { return slices_.directory_lookup(slice); });
}

void RequestHandler::on_config_changed(const slicing::SliceConfig& config) {
  dissemination::SprayOptions spray = router_->options();
  spray.max_hops = dissemination::adaptive_ttl(
      spray.global_fanout, config.slice_count, options_.ttl_beta);
  router_->set_options(spray);
}

bool RequestHandler::handle(const net::Message& msg) {
  if (router_->handle(msg)) return true;

  switch (msg.type) {
    case kOpEnvelope: {
      const auto envelope = decode_op_envelope(msg.payload);
      if (!envelope) return true;  // malformed: drop
      metrics_.counter("rh.envelopes").add();
      if (envelope->protocol != options_.serve_protocol) {
        // Speak-one-version server: answer with an explicit mismatch naming
        // what we serve, so the client renegotiates instead of timing out.
        metrics_.counter("rh.version_mismatches").add();
        if (!envelope->ops.empty()) {
          const RequestId rid = envelope->ops.front().rid;
          transport_.send(net::Message{
              self_, NodeId(rid.client), kVersionMismatch,
              encode(VersionMismatch{rid, envelope->protocol,
                                     options_.serve_protocol})});
        }
        return true;
      }
      handle_envelope(*envelope);
      return true;
    }
    case kReplicatePush: {
      const auto push = decode_replicate_push(msg.payload);
      if (!push) return true;
      for (const store::Object& object : push->objects) {
        store_replicated(object);
      }
      return true;
    }
    default:
      return false;
  }
}

void RequestHandler::handle_envelope(const OpEnvelope& envelope) {
  // Stats is an admin op about *this* node: answered right here at the
  // contact, never sprayed into a slice. Everything else regroups by
  // target slice below.
  std::vector<OpReply> stats_replies;
  // Regroup by target slice: every op bound for the same slice travels as
  // one spray unit (ordered map keeps spray emission deterministic). A
  // group over the per-datagram budget is split — the UDP transport drops
  // oversized frames, so the split must happen here.
  std::map<SliceId, OpsRequest> by_slice;
  std::size_t client_ops = 0;
  const RoutedOp* first_client_op = nullptr;
  for (const RoutedOp& routed : envelope.ops) {
    if (routed.op.type == OpType::kStats) {
      const SimTime started = clock_();
      metrics_.counter("rh.stats_served").add();
      if (admission_ != nullptr) admission_->admit(WorkClass::kAdmin);
      const std::string text = stats_fn_ ? stats_fn_() : std::string{};
      stats_replies.push_back(
          OpReply{routed.rid, OpType::kStats, OpStatus::kOk,
                  store::Object{
                      Key{}, 0,
                      Payload(ByteView(
                          reinterpret_cast<const std::uint8_t*>(text.data()),
                          text.size()))}});
      note_op(OpType::kStats, started);
      continue;
    }
    ++client_ops;
    if (first_client_op == nullptr) first_client_op = &routed;
    by_slice[slices_.key_slice(routed.op.key)].ops.push_back(routed);
  }
  if (!stats_replies.empty()) {
    const NodeId client(stats_replies.front().rid.client);
    const SliceId slice = slices_.slice();
    chunk_by_budget(
        stats_replies,
        [](const OpReply& reply) { return encoded_size(reply); },
        [&](std::vector<OpReply>& chunk) {
          transport_.send(net::Message{
              self_, client, kOpReplyBatch,
              encode(OpReplyBatch{self_, slice, std::move(chunk)})});
        });
  }
  // Admission gate for the envelope's client work. Stats (above) were
  // served regardless: a saturated node must stay observable.
  if (first_client_op != nullptr &&
      shed_client_ops(*first_client_op, client_ops, "rh.envelopes_shed")) {
    return;
  }
  for (auto& [slice, group] : by_slice) {
    metrics_.counter("rh.client_ops").add(group.ops.size());
    chunk_by_budget(
        group.ops, [](const RoutedOp& routed) { return encoded_size(routed); },
        [this, slice = slice](std::vector<RoutedOp>& chunk) {
          spray_or_deliver(slice, encode_inner(OpsRequest{std::move(chunk)}));
        });
  }
}

void RequestHandler::spray_ops(SliceId target, std::vector<RoutedOp> ops) {
  if (ops.empty()) return;
  metrics_.counter("rh.shard_forwarded_ops").add(ops.size());
  chunk_by_budget(
      ops, [](const RoutedOp& routed) { return encoded_size(routed); },
      [this, target](std::vector<RoutedOp>& chunk) {
        spray_or_deliver(target, encode_inner(OpsRequest{std::move(chunk)}));
      });
}

void RequestHandler::store_replicated(store::Object object) {
  if (object.expired(wall_())) {
    // A copy that expired in flight: storing it would only schedule more
    // reap work and risk serving a dead value before the wheel fires.
    metrics_.counter("rh.pushes_expired").add();
    return;
  }
  if (slices_.key_slice(object.key) == slices_.slice()) {
    if (store_.put(object).ok()) {
      metrics_.counter("rh.pushes_stored").add();
    }
  } else if (options_.hinted_handoff) {
    // Misrouted copy (stale view or slice change mid-flight): keep it
    // and re-home it to the right slice on the next maintenance tick.
    buffer_handoff(std::move(object));
  }
}

void RequestHandler::spray_or_deliver(SliceId target, Payload inner) {
  router_->originate(target, std::move(inner));
}

dissemination::DeliverResult RequestHandler::deliver(const Payload& payload,
                                                     SliceId target,
                                                     NodeId /*origin*/) {
  const auto kind = peek_inner_kind(payload);
  if (!kind) return dissemination::DeliverResult::kStop;

  switch (*kind) {
    case InnerKind::kOps: {
      const auto ops = decode_ops(payload);
      if (!ops) return dissemination::DeliverResult::kStop;
      return handle_ops_delivery(*ops, target);
    }
    case InnerKind::kHandoff: {
      const auto handoff = decode_handoff(payload);
      if (!handoff) return dissemination::DeliverResult::kStop;
      if (slices_.key_slice(handoff->object.key) == slices_.slice() &&
          store_.put(handoff->object).ok()) {
        metrics_.counter("rh.handoffs_stored").add();
      }
      return dissemination::DeliverResult::kStop;
    }
  }
  return dissemination::DeliverResult::kStop;
}

void RequestHandler::note_op(OpType type, SimTime started) {
  if (hot_ == nullptr && admission_ == nullptr) return;
  const SimTime elapsed = clock_() - started;  // SimTime unit is µs
  if (admission_ != nullptr) {
    // Feeds the smoothed service-latency estimate behind the Little's-law
    // overload signal.
    admission_->note_service(elapsed > 0 ? elapsed : 0);
  }
  if (hot_ == nullptr) return;
  const std::size_t i = OpHotMetrics::index(type);
  if (obs::Counter* counter = hot_->ops[i]) counter->add();
  if (obs::LatencyHistogram* hist = hot_->exec_us[i]) {
    hist->record(elapsed > 0 ? static_cast<std::uint64_t>(elapsed) : 0);
  }
}

bool RequestHandler::shed_client_ops(const RoutedOp& first,
                                     std::size_t op_count,
                                     const char* shed_counter) {
  if (admission_ == nullptr) return false;
  const AdmissionController::Decision decision =
      admission_->admit(WorkClass::kClientOp, op_count);
  if (decision.admit) return false;
  metrics_.counter(shed_counter).add();
  // Explicit backpressure instead of a silent drop: the client finds the
  // owning request by rid (first op, like kVersionMismatch), backs off by
  // the hint and routes around this node.
  transport_.send(net::Message{
      self_, NodeId(first.rid.client), kOverloaded,
      encode(OverloadReply{first.rid, decision.retry_after_ms})});
  return true;
}

void RequestHandler::buffer_handoff(store::Object object) {
  if (handoff_.size() >= options_.handoff_capacity) {
    handoff_.pop_front();  // oldest hint gives way; anti-entropy backstops
    metrics_.counter("rh.handoffs_evicted").add();
  }
  handoff_.push_back(std::move(object));
}

void RequestHandler::tick_maintenance() {
  if (!options_.hinted_handoff) return;

  // Re-home buffered misrouted copies. A directory contact for the target
  // slice makes this one cheap unicast; discovery spray is the fallback.
  //
  // Deliberately NOT done here: scanning the store for "foreign" keys left
  // behind by slice changes. Replication = slice membership means a
  // misplaced node is never an object's sole holder, state transfer
  // completion already drops foreign keys safely, and at large k (slice
  // width below rank-estimate noise) such a scan turns boundary jitter
  // into discovery-spray storms.
  for (std::size_t i = 0;
       i < options_.handoff_per_tick && !handoff_.empty(); ++i) {
    store::Object obj = std::move(handoff_.front());
    handoff_.pop_front();
    const std::uint64_t fingerprint =
        hash_combine(stable_key_hash(obj.key), obj.version);
    if (resprayed_.seen_or_insert(fingerprint)) continue;  // already re-homed
    const SliceId target = slices_.key_slice(obj.key);

    if (const auto contact = slices_.directory_lookup(target);
        contact && *contact != self_) {
      const ReplicatePush push{{std::move(obj)}};
      transport_.send(
          net::Message{self_, *contact, kReplicatePush, encode(push)});
      metrics_.counter("rh.handoffs_forwarded").add();
    } else {
      metrics_.counter("rh.handoffs_sprayed").add();
      spray_or_deliver(target, encode_inner(HandoffRequest{std::move(obj)}));
    }
  }
}

dissemination::DeliverResult RequestHandler::handle_ops_delivery(
    const OpsRequest& ops, SliceId target) {
  if (ops.ops.empty()) return dissemination::DeliverResult::kStop;

  // Replica-side admission gate: a sprayed batch reaching an overloaded
  // member is refused with the same explicit kOverloaded frame (and stops
  // relaying — shedding includes the epidemic fan-out). A non-overloaded
  // member elsewhere in the slice may still serve the duplicate spray;
  // the client's rid dedup absorbs whichever answer lands first.
  if (shed_client_ops(ops.ops.front(), ops.ops.size(),
                      "rh.deliveries_shed")) {
    return dissemination::DeliverResult::kStop;
  }

  OpReplyBatch batch{self_, slices_.slice(), {}};
  ReplicatePush push;
  std::vector<RoutedOp> unserved_gets;
  bool has_writes = false;

  for (const RoutedOp& routed : ops.ops) {
    const Operation& op = routed.op;
    const SimTime started = clock_();
    has_writes = has_writes || op.type != OpType::kGet;
    switch (op.type) {
      case OpType::kPut: {
        store::Object object{op.key, op.version.value_or(0), op.value};
        if (op.ttl_ms != 0) {
          // The first storing replica stamps the absolute deadline (wall
          // clock: replicas compare it across processes); copies propagate
          // the stamp so the whole slice expires the object together.
          object.expires_at =
              wall_() + static_cast<SimTime>(op.ttl_ms) * kMillis;
        }
        const Status stored = store_.put(object);
        if (!stored.ok()) {
          if (stored.error().code == Error::Code::kSuperseded) {
            // The key's tombstone outranks this version: the store
            // discarded it. Tell the client honestly — a kOk ack here
            // would claim a write that never landed.
            metrics_.counter("rh.puts_superseded").add();
            batch.replies.push_back(OpReply{
                routed.rid, OpType::kPut, OpStatus::kSuperseded,
                store::Object{op.key, object.version, {}}});
            break;
          }
          // Version conflict: the upper layer broke its ordering contract.
          // Do not ack; the client will time out and surface the failure.
          metrics_.counter("rh.put_conflicts").add();
          break;
        }
        metrics_.counter("rh.puts_stored").add();
        batch.replies.push_back(OpReply{
            routed.rid, OpType::kPut, OpStatus::kOk,
            store::Object{op.key, object.version, {}}});
        push.objects.push_back(std::move(object));
        break;
      }
      case OpType::kDelete: {
        // First storing replica stamps the tombstone; copies propagate the
        // stamp so every replica GCs on (roughly) the same schedule.
        store::Object tomb = store::Object::make_tombstone(
            op.key, op.version.value_or(0), clock_());
        const Status stored = store_.put(tomb);
        if (!stored.ok()) {
          metrics_.counter("rh.delete_conflicts").add();
          break;
        }
        metrics_.counter("rh.deletes_stored").add();
        batch.replies.push_back(OpReply{
            routed.rid, OpType::kDelete, OpStatus::kOk,
            store::Object{op.key, tomb.version, {}}});
        push.objects.push_back(std::move(tomb));
        break;
      }
      case OpType::kGet: {
        auto found = store_.get(op.key, op.version);
        if (found.ok()) {
          store::Object object = std::move(found).value();
          if (object.expired(wall_())) {
            // Expired but not yet reaped: an authoritative miss, answered
            // like a delete so the value is never served past its deadline
            // (and never relayed onward for a slice-mate to resurrect).
            metrics_.counter("rh.gets_expired").add();
            batch.replies.push_back(OpReply{
                routed.rid, OpType::kGet, OpStatus::kDeleted,
                store::Object{op.key, object.version, {}}});
            break;
          }
          if (object.tombstone) {
            // Authoritative "deleted": completes the client's get instead
            // of letting it time out.
            metrics_.counter("rh.gets_deleted").add();
            batch.replies.push_back(OpReply{
                routed.rid, OpType::kGet, OpStatus::kDeleted,
                store::Object{op.key, object.version, {}}});
          } else {
            metrics_.counter("rh.gets_served").add();
            batch.replies.push_back(OpReply{routed.rid, OpType::kGet,
                                            OpStatus::kOk,
                                            std::move(object)});
          }
          break;
        }
        if (const Version tomb = store_.tombstone_version(op.key);
            tomb != 0 && (!op.version || *op.version <= tomb)) {
          // The requested version was dropped by a delete we hold: that is
          // an authoritative miss, not a replication gap.
          metrics_.counter("rh.gets_deleted").add();
          batch.replies.push_back(
              OpReply{routed.rid, OpType::kGet, OpStatus::kDeleted,
                      store::Object{op.key, tomb, {}}});
          break;
        }
        // In the key's slice but missing the object (still replicating, or
        // it never existed). Keep this get spreading inside the slice:
        // another member may hold it. The client times out on a true miss.
        metrics_.counter("rh.gets_missed").add();
        unserved_gets.push_back(routed);
        break;
      }
      case OpType::kCompareAndPut: {
        store::Object object{op.key, op.version.value_or(0), op.value};
        const store::CasOutcome outcome =
            store_.compare_and_put(object, op.expected);
        switch (outcome.status) {
          case store::CasOutcome::Status::kStored:
            metrics_.counter("rh.cas_stored").add();
            batch.replies.push_back(OpReply{
                routed.rid, OpType::kCompareAndPut, OpStatus::kOk,
                store::Object{op.key, object.version, {}}});
            push.objects.push_back(std::move(object));
            break;
          case store::CasOutcome::Status::kMismatch:
          case store::CasOutcome::Status::kDeleted:
            // Definitive precondition failure. The reply carries the key's
            // actual current version (the tombstone's for a deleted key) so
            // the client can re-read and decide, rather than retry blind.
            metrics_.counter("rh.cas_failed").add();
            batch.replies.push_back(OpReply{
                routed.rid, OpType::kCompareAndPut, OpStatus::kCasFailed,
                store::Object{op.key, outcome.current, {}}});
            break;
          case store::CasOutcome::Status::kConflict:
            // The stamped version failed to advance past the current one:
            // version-ordering contract broke, same as a put conflict. No
            // ack; the client times out and surfaces the failure.
            metrics_.counter("rh.cas_conflicts").add();
            break;
        }
        break;
      }
      case OpType::kStats:
        // Stats ops are answered at the contact and never sprayed; one
        // arriving inside a slice delivery means a peer broke the
        // protocol. Drop it (no reply — nothing sensible to report).
        metrics_.counter("rh.stats_misrouted").add();
        break;
    }
    note_op(op.type, started);
  }

  // Reply and push batches are chunked against the per-datagram budget:
  // two 35 kB get hits served out of one delivered batch must go out as
  // two reply datagrams, not one silently-dropped 70 kB frame.
  if (!batch.replies.empty()) {
    const NodeId client(ops.ops.front().rid.client);
    chunk_by_budget(
        batch.replies,
        [](const OpReply& reply) { return encoded_size(reply); },
        [&](std::vector<OpReply>& chunk) {
          transport_.send(net::Message{
              self_, client, kOpReplyBatch,
              encode(OpReplyBatch{batch.replica, batch.slice,
                                  std::move(chunk)})});
        });
  }

  // Immediate redundancy: copy everything stored here to a few slice-mates
  // right away so the writes survive this node failing before the next
  // anti-entropy round. Each chunk is encoded once and its buffer shared
  // across the fan-out.
  if (!push.objects.empty()) {
    chunk_by_budget(
        push.objects,
        [](const store::Object& object) { return store::encoded_size(object); },
        [this](std::vector<store::Object>& chunk) {
          const Payload encoded = encode(ReplicatePush{std::move(chunk)});
          for (const NodeId peer :
               slices_.slice_peers(options_.direct_replication)) {
            if (peer == self_) continue;
            transport_.send(
                net::Message{self_, peer, kReplicatePush, encoded});
          }
        });
  }

  if (unserved_gets.empty()) return dissemination::DeliverResult::kStop;
  if (!has_writes) {
    // Pure-read batch: keep the original payload relaying in the slice
    // (duplicate replies for already-served gets are absorbed client-side
    // by request id — the epidemic trade the paper makes everywhere else).
    return dissemination::DeliverResult::kContinueInSlice;
  }
  // Mixed batch: stop the original (or every relay hop would re-execute
  // the writes and re-fan full-value ReplicatePush copies slice-wide) and
  // re-spray only the unserved gets. The remainder is a pure-read batch,
  // so downstream members use the continue path — no re-spray cascade.
  metrics_.counter("rh.batch_get_resprays").add();
  spray_or_deliver(target, encode_inner(OpsRequest{std::move(unserved_gets)}));
  return dissemination::DeliverResult::kStop;
}

}  // namespace dataflasks::core
