#include "core/request_handler.hpp"

#include "common/hash.hpp"

namespace dataflasks::core {

RequestHandler::RequestHandler(NodeId self, net::Transport& transport,
                               pss::PeerSampling& pss, SliceManager& slices,
                               store::Store& store, Rng rng,
                               RequestHandlerOptions options,
                               MetricsRegistry& metrics)
    : self_(self),
      transport_(transport),
      slices_(slices),
      store_(store),
      rng_(rng),
      options_(options),
      metrics_(metrics) {
  dissemination::SprayOptions spray = options_.spray;
  spray.max_hops = dissemination::adaptive_ttl(
      spray.global_fanout, slices_.config().slice_count, options_.ttl_beta);

  router_ = std::make_unique<dissemination::SprayRouter>(
      self, transport, pss, rng_.fork(0x0f0e),
      spray,
      /*current_slice=*/[this]() { return slices_.slice(); },
      /*slice_peers=*/
      [this](std::size_t count) { return slices_.slice_peers(count); },
      /*deliver=*/
      [this](const Payload& payload, SliceId target, NodeId origin) {
        return deliver(payload, target, origin);
      },
      /*directory=*/
      [this](SliceId slice) { return slices_.directory_lookup(slice); });
}

void RequestHandler::on_config_changed(const slicing::SliceConfig& config) {
  dissemination::SprayOptions spray = router_->options();
  spray.max_hops = dissemination::adaptive_ttl(
      spray.global_fanout, config.slice_count, options_.ttl_beta);
  router_->set_options(spray);
}

bool RequestHandler::handle(const net::Message& msg) {
  if (router_->handle(msg)) return true;

  switch (msg.type) {
    case kClientPut: {
      const auto put = decode_put(msg.payload);
      if (!put) return true;  // malformed: drop
      metrics_.counter("rh.client_puts").add();
      // The client's inner encoding is sprayed as-is: share its buffer.
      spray_or_deliver(slices_.key_slice(put->object.key), msg.payload);
      return true;
    }
    case kClientGet: {
      const auto get = decode_get(msg.payload);
      if (!get) return true;
      metrics_.counter("rh.client_gets").add();
      spray_or_deliver(slices_.key_slice(get->key), msg.payload);
      return true;
    }
    case kReplicatePush: {
      const auto push = decode_replicate_push(msg.payload);
      if (!push) return true;
      if (slices_.key_slice(push->object.key) == slices_.slice()) {
        if (store_.put(push->object).ok()) {
          metrics_.counter("rh.pushes_stored").add();
        }
      } else if (options_.hinted_handoff) {
        // Misrouted copy (stale view or slice change mid-flight): keep it
        // and re-home it to the right slice on the next maintenance tick.
        buffer_handoff(push->object);
      }
      return true;
    }
    default:
      return false;
  }
}

void RequestHandler::spray_or_deliver(SliceId target, Payload inner) {
  router_->originate(target, std::move(inner));
}

dissemination::DeliverResult RequestHandler::deliver(const Payload& payload,
                                                     SliceId /*target*/,
                                                     NodeId /*origin*/) {
  const auto kind = peek_inner_kind(payload);
  if (!kind) return dissemination::DeliverResult::kStop;

  switch (*kind) {
    case InnerKind::kPut: {
      const auto put = decode_put(payload);
      if (!put) return dissemination::DeliverResult::kStop;
      return handle_put_delivery(*put);
    }
    case InnerKind::kGet: {
      const auto get = decode_get(payload);
      if (!get) return dissemination::DeliverResult::kStop;
      return handle_get_delivery(*get);
    }
    case InnerKind::kHandoff: {
      const auto handoff = decode_handoff(payload);
      if (!handoff) return dissemination::DeliverResult::kStop;
      if (slices_.key_slice(handoff->object.key) == slices_.slice() &&
          store_.put(handoff->object).ok()) {
        metrics_.counter("rh.handoffs_stored").add();
      }
      return dissemination::DeliverResult::kStop;
    }
  }
  return dissemination::DeliverResult::kStop;
}

void RequestHandler::buffer_handoff(store::Object object) {
  if (handoff_.size() >= options_.handoff_capacity) {
    handoff_.pop_front();  // oldest hint gives way; anti-entropy backstops
    metrics_.counter("rh.handoffs_evicted").add();
  }
  handoff_.push_back(std::move(object));
}

void RequestHandler::tick_maintenance() {
  if (!options_.hinted_handoff) return;

  // Re-home buffered misrouted copies. A directory contact for the target
  // slice makes this one cheap unicast; discovery spray is the fallback.
  //
  // Deliberately NOT done here: scanning the store for "foreign" keys left
  // behind by slice changes. Replication = slice membership means a
  // misplaced node is never an object's sole holder, state transfer
  // completion already drops foreign keys safely, and at large k (slice
  // width below rank-estimate noise) such a scan turns boundary jitter
  // into discovery-spray storms.
  for (std::size_t i = 0;
       i < options_.handoff_per_tick && !handoff_.empty(); ++i) {
    store::Object obj = std::move(handoff_.front());
    handoff_.pop_front();
    const std::uint64_t fingerprint =
        hash_combine(stable_key_hash(obj.key), obj.version);
    if (resprayed_.seen_or_insert(fingerprint)) continue;  // already re-homed
    const SliceId target = slices_.key_slice(obj.key);

    if (const auto contact = slices_.directory_lookup(target);
        contact && *contact != self_) {
      const ReplicatePush push{std::move(obj)};
      transport_.send(
          net::Message{self_, *contact, kReplicatePush, encode(push)});
      metrics_.counter("rh.handoffs_forwarded").add();
    } else {
      metrics_.counter("rh.handoffs_sprayed").add();
      spray_or_deliver(target, encode_inner(HandoffRequest{std::move(obj)}));
    }
  }
}

dissemination::DeliverResult RequestHandler::handle_put_delivery(
    const PutRequest& put) {
  const Status stored = store_.put(put.object);
  if (!stored.ok()) {
    // Version conflict: the upper layer broke its ordering contract. Do not
    // ack; the client will time out and surface the failure.
    metrics_.counter("rh.put_conflicts").add();
    return dissemination::DeliverResult::kStop;
  }
  metrics_.counter("rh.puts_stored").add();

  const PutAck ack{put.rid, self_, slices_.slice(), put.object.key,
                   put.object.version};
  transport_.send(net::Message{self_, put.client, kPutAck, encode(ack)});

  // Immediate redundancy: copy to a few slice-mates right away so the write
  // survives this node failing before the next anti-entropy round.
  // Encode the push once; every slice-mate Message shares the buffer.
  const ReplicatePush push{put.object};
  const Payload encoded = encode(push);
  for (const NodeId peer : slices_.slice_peers(options_.direct_replication)) {
    if (peer == self_) continue;
    transport_.send(net::Message{self_, peer, kReplicatePush, encoded});
  }
  return dissemination::DeliverResult::kStop;
}

dissemination::DeliverResult RequestHandler::handle_get_delivery(
    const GetRequest& get) {
  auto obj = store_.get(get.key, get.version);
  if (obj.ok()) {
    metrics_.counter("rh.gets_served").add();
    const GetReply reply{get.rid, self_, slices_.slice(), true,
                         std::move(obj).value()};
    transport_.send(net::Message{self_, get.client, kGetReply, encode(reply)});
    return dissemination::DeliverResult::kStop;
  }
  // We are in the key's slice but lack the object (still replicating, or it
  // never existed). Keep the request spreading inside the slice: another
  // member may hold it. The client times out on a true miss.
  metrics_.counter("rh.gets_missed").add();
  return dissemination::DeliverResult::kContinueInSlice;
}

}  // namespace dataflasks::core
