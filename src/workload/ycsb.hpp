// YCSB-style workload specifications and op-stream generation [26].
// Standard mixes A-D and F are provided plus the write-only workload the
// DataFlasks evaluation uses ("We ran YCSB configured for a write only
// workload", §VI).
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "workload/distributions.hpp"

namespace dataflasks::workload {

enum class OpKind : std::uint8_t {
  kRead,
  kUpdate,           ///< write a new version of an existing record
  kInsert,           ///< write a brand-new record
  kReadModifyWrite,  ///< read then update the same record
  kDelete,           ///< tombstone the record (epidemic delete)
};

struct Op {
  OpKind kind = OpKind::kRead;
  Key key;
  std::size_t value_size = 0;
};

enum class KeyDistribution { kUniform, kZipfian, kScrambledZipfian, kLatest };

struct WorkloadSpec {
  std::string name = "custom";
  std::size_t record_count = 1000;
  std::size_t operation_count = 1000;
  double read_proportion = 0.0;
  double update_proportion = 0.0;
  double insert_proportion = 0.0;
  double rmw_proportion = 0.0;
  double delete_proportion = 0.0;
  KeyDistribution distribution = KeyDistribution::kZipfian;
  std::size_t value_size = 100;

  /// Standard YCSB presets.
  [[nodiscard]] static WorkloadSpec A();  ///< update heavy: 50/50 r/u, zipf
  [[nodiscard]] static WorkloadSpec B();  ///< read mostly: 95/5 r/u, zipf
  [[nodiscard]] static WorkloadSpec C();  ///< read only, zipf
  [[nodiscard]] static WorkloadSpec D();  ///< read latest: 95/5 r/i, latest
  [[nodiscard]] static WorkloadSpec F();  ///< read-modify-write 50/50, zipf
  /// The paper's evaluation workload: 100% writes.
  [[nodiscard]] static WorkloadSpec write_only();
  /// Churn-the-keyspace mix: reads + updates + deletes + compensating
  /// inserts, exercising tombstone dissemination under load.
  [[nodiscard]] static WorkloadSpec delete_heavy();

  /// Rescales the mix to include `fraction` deletes (taken pro-rata from
  /// the other proportions). Used by the workbench's deletes= knob.
  [[nodiscard]] WorkloadSpec with_deletes(double fraction) const;
};

/// Deterministic op-stream generator for one logical YCSB client.
class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadSpec spec, Rng rng);

  /// YCSB-style record key ("user" + hashed index).
  [[nodiscard]] static Key key_for(std::uint64_t index);

  /// The load phase: one insert per initial record.
  [[nodiscard]] std::vector<Op> load_phase() const;

  /// Next transaction-phase operation.
  [[nodiscard]] Op next();

  /// Whole transaction phase (operation_count ops).
  [[nodiscard]] std::vector<Op> transaction_phase();

  [[nodiscard]] const WorkloadSpec& spec() const { return spec_; }

 private:
  [[nodiscard]] OpKind choose_kind();

  WorkloadSpec spec_;
  Rng rng_;
  std::unique_ptr<IntegerDistribution> chooser_;
  std::uint64_t insert_cursor_;  ///< next fresh record index for inserts
};

}  // namespace dataflasks::workload
