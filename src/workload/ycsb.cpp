#include "workload/ycsb.hpp"

#include "common/ensure.hpp"
#include "common/hash.hpp"

namespace dataflasks::workload {

WorkloadSpec WorkloadSpec::A() {
  WorkloadSpec s;
  s.name = "ycsb-a";
  s.read_proportion = 0.5;
  s.update_proportion = 0.5;
  s.distribution = KeyDistribution::kZipfian;
  return s;
}

WorkloadSpec WorkloadSpec::B() {
  WorkloadSpec s;
  s.name = "ycsb-b";
  s.read_proportion = 0.95;
  s.update_proportion = 0.05;
  s.distribution = KeyDistribution::kZipfian;
  return s;
}

WorkloadSpec WorkloadSpec::C() {
  WorkloadSpec s;
  s.name = "ycsb-c";
  s.read_proportion = 1.0;
  s.distribution = KeyDistribution::kZipfian;
  return s;
}

WorkloadSpec WorkloadSpec::D() {
  WorkloadSpec s;
  s.name = "ycsb-d";
  s.read_proportion = 0.95;
  s.insert_proportion = 0.05;
  s.distribution = KeyDistribution::kLatest;
  return s;
}

WorkloadSpec WorkloadSpec::F() {
  WorkloadSpec s;
  s.name = "ycsb-f";
  s.read_proportion = 0.5;
  s.rmw_proportion = 0.5;
  s.distribution = KeyDistribution::kZipfian;
  return s;
}

WorkloadSpec WorkloadSpec::write_only() {
  WorkloadSpec s;
  s.name = "write-only";
  s.update_proportion = 1.0;
  s.distribution = KeyDistribution::kUniform;
  return s;
}

WorkloadSpec WorkloadSpec::delete_heavy() {
  WorkloadSpec s;
  s.name = "delete-heavy";
  s.read_proportion = 0.4;
  s.update_proportion = 0.3;
  s.delete_proportion = 0.2;
  s.insert_proportion = 0.1;  // keyspace shrinks without fresh inserts
  s.distribution = KeyDistribution::kUniform;
  return s;
}

WorkloadSpec WorkloadSpec::with_deletes(double fraction) const {
  ensure(fraction >= 0.0 && fraction < 1.0,
         "with_deletes: fraction must be in [0, 1)");
  WorkloadSpec s = *this;
  const double keep = 1.0 - fraction;
  s.read_proportion *= keep;
  s.update_proportion *= keep;
  s.insert_proportion *= keep;
  s.rmw_proportion *= keep;
  s.delete_proportion = s.delete_proportion * keep + fraction;
  return s;
}

WorkloadGenerator::WorkloadGenerator(WorkloadSpec spec, Rng rng)
    : spec_(std::move(spec)), rng_(rng), insert_cursor_(spec_.record_count) {
  ensure(spec_.record_count > 0, "workload: zero records");
  const double total = spec_.read_proportion + spec_.update_proportion +
                       spec_.insert_proportion + spec_.rmw_proportion +
                       spec_.delete_proportion;
  ensure(total > 0.999 && total < 1.001, "workload proportions must sum to 1");

  switch (spec_.distribution) {
    case KeyDistribution::kUniform:
      chooser_ = std::make_unique<UniformDistribution>(spec_.record_count);
      break;
    case KeyDistribution::kZipfian:
      chooser_ = std::make_unique<ZipfianDistribution>(spec_.record_count);
      break;
    case KeyDistribution::kScrambledZipfian:
      chooser_ =
          std::make_unique<ScrambledZipfianDistribution>(spec_.record_count);
      break;
    case KeyDistribution::kLatest:
      chooser_ = std::make_unique<LatestDistribution>(spec_.record_count);
      break;
  }
}

Key WorkloadGenerator::key_for(std::uint64_t index) {
  // YCSB hashes the index so adjacent records are spread over the key space.
  std::uint64_t state = index;
  return "user" + std::to_string(splitmix64(state));
}

std::vector<Op> WorkloadGenerator::load_phase() const {
  std::vector<Op> ops;
  ops.reserve(spec_.record_count);
  for (std::uint64_t i = 0; i < spec_.record_count; ++i) {
    ops.push_back(Op{OpKind::kInsert, key_for(i), spec_.value_size});
  }
  return ops;
}

OpKind WorkloadGenerator::choose_kind() {
  double p = rng_.next_double();
  if ((p -= spec_.read_proportion) < 0) return OpKind::kRead;
  if ((p -= spec_.update_proportion) < 0) return OpKind::kUpdate;
  if ((p -= spec_.insert_proportion) < 0) return OpKind::kInsert;
  if ((p -= spec_.delete_proportion) < 0) return OpKind::kDelete;
  return OpKind::kReadModifyWrite;
}

Op WorkloadGenerator::next() {
  const OpKind kind = choose_kind();
  if (kind == OpKind::kInsert) {
    const std::uint64_t index = insert_cursor_++;
    chooser_->grow(insert_cursor_);
    return Op{OpKind::kInsert, key_for(index), spec_.value_size};
  }
  const std::uint64_t index = chooser_->next(rng_);
  return Op{kind, key_for(index), spec_.value_size};
}

std::vector<Op> WorkloadGenerator::transaction_phase() {
  std::vector<Op> ops;
  ops.reserve(spec_.operation_count);
  for (std::size_t i = 0; i < spec_.operation_count; ++i) {
    ops.push_back(next());
  }
  return ops;
}

}  // namespace dataflasks::workload
