#include "workload/distributions.hpp"

#include <cmath>

#include "common/ensure.hpp"
#include "common/hash.hpp"

namespace dataflasks::workload {

UniformDistribution::UniformDistribution(std::uint64_t item_count)
    : count_(item_count) {
  ensure(count_ > 0, "UniformDistribution: zero items");
}

std::uint64_t UniformDistribution::next(Rng& rng) {
  return rng.next_below(count_);
}

void UniformDistribution::grow(std::uint64_t new_item_count) {
  ensure(new_item_count >= count_, "distribution cannot shrink");
  count_ = new_item_count;
}

ZipfianDistribution::ZipfianDistribution(std::uint64_t item_count,
                                         double theta)
    : count_(item_count), theta_(theta) {
  ensure(count_ > 0, "ZipfianDistribution: zero items");
  ensure(theta_ > 0.0 && theta_ < 1.0, "ZipfianDistribution: theta in (0,1)");
  recompute();
}

double ZipfianDistribution::zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
  }
  return sum;
}

void ZipfianDistribution::recompute() {
  zeta2theta_ = zeta(2, theta_);
  zetan_ = zeta(count_, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(count_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

std::uint64_t ZipfianDistribution::next(Rng& rng) {
  // Gray et al. "Quickly generating billion-record synthetic databases",
  // as used by YCSB's ZipfianGenerator.
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto idx = static_cast<std::uint64_t>(
      static_cast<double>(count_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return idx >= count_ ? count_ - 1 : idx;
}

void ZipfianDistribution::grow(std::uint64_t new_item_count) {
  ensure(new_item_count >= count_, "distribution cannot shrink");
  if (new_item_count == count_) return;
  count_ = new_item_count;
  // Full recompute: O(n). Callers that grow per insert (Latest) accept this
  // for the modest item counts simulations use.
  recompute();
}

ScrambledZipfianDistribution::ScrambledZipfianDistribution(
    std::uint64_t item_count)
    : count_(item_count), zipf_(item_count) {}

std::uint64_t ScrambledZipfianDistribution::next(Rng& rng) {
  std::uint64_t state = zipf_.next(rng) + 0x9a3c974ab1UL;
  return splitmix64(state) % count_;
}

void ScrambledZipfianDistribution::grow(std::uint64_t new_item_count) {
  zipf_.grow(new_item_count);
  count_ = new_item_count;
}

LatestDistribution::LatestDistribution(std::uint64_t item_count)
    : count_(item_count), zipf_(item_count) {}

std::uint64_t LatestDistribution::next(Rng& rng) {
  const std::uint64_t offset = zipf_.next(rng);
  // Most popular = most recent (highest index).
  return count_ - 1 - (offset >= count_ ? count_ - 1 : offset);
}

void LatestDistribution::grow(std::uint64_t new_item_count) {
  zipf_.grow(new_item_count);
  count_ = new_item_count;
}

}  // namespace dataflasks::workload
