// Key-choice distributions mirroring the YCSB core generators [26]:
// uniform, zipfian (Gray's method with precomputed zeta), scrambled zipfian
// and latest. DataFlasks' evaluation uses YCSB as the request driver, so
// these reproduce the same op streams.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"

namespace dataflasks::workload {

class IntegerDistribution {
 public:
  virtual ~IntegerDistribution() = default;

  /// Next item index in [0, item_count).
  virtual std::uint64_t next(Rng& rng) = 0;

  /// Informs the distribution that the item space grew (inserts).
  virtual void grow(std::uint64_t new_item_count) = 0;

  [[nodiscard]] virtual std::uint64_t item_count() const = 0;
};

class UniformDistribution final : public IntegerDistribution {
 public:
  explicit UniformDistribution(std::uint64_t item_count);
  std::uint64_t next(Rng& rng) override;
  void grow(std::uint64_t new_item_count) override;
  [[nodiscard]] std::uint64_t item_count() const override { return count_; }

 private:
  std::uint64_t count_;
};

/// YCSB's ZipfianGenerator: skewed access where item 0 is the most popular.
/// theta defaults to YCSB's 0.99.
class ZipfianDistribution final : public IntegerDistribution {
 public:
  explicit ZipfianDistribution(std::uint64_t item_count, double theta = 0.99);
  std::uint64_t next(Rng& rng) override;
  void grow(std::uint64_t new_item_count) override;
  [[nodiscard]] std::uint64_t item_count() const override { return count_; }
  [[nodiscard]] double theta() const { return theta_; }

 private:
  void recompute();
  [[nodiscard]] static double zeta(std::uint64_t n, double theta);

  std::uint64_t count_;
  double theta_;
  double alpha_ = 0.0;
  double zetan_ = 0.0;
  double eta_ = 0.0;
  double zeta2theta_ = 0.0;
};

/// Zipfian popularity spread over the whole key space via hashing, so the
/// hot items are not clustered at low indices (YCSB ScrambledZipfian).
class ScrambledZipfianDistribution final : public IntegerDistribution {
 public:
  explicit ScrambledZipfianDistribution(std::uint64_t item_count);
  std::uint64_t next(Rng& rng) override;
  void grow(std::uint64_t new_item_count) override;
  [[nodiscard]] std::uint64_t item_count() const override { return count_; }

 private:
  std::uint64_t count_;
  ZipfianDistribution zipf_;
};

/// YCSB's Latest: most recently inserted items are the most popular.
class LatestDistribution final : public IntegerDistribution {
 public:
  explicit LatestDistribution(std::uint64_t item_count);
  std::uint64_t next(Rng& rng) override;
  void grow(std::uint64_t new_item_count) override;
  [[nodiscard]] std::uint64_t item_count() const override { return count_; }

 private:
  std::uint64_t count_;
  ZipfianDistribution zipf_;
};

}  // namespace dataflasks::workload
