#include "baseline/chord.hpp"

#include <algorithm>

#include "common/hash.hpp"

namespace dataflasks::baseline {

std::uint64_t chord_ring_id(NodeId node) {
  return stable_key_hash("chord-node:" + std::to_string(node.value));
}

bool in_ring_range(std::uint64_t x, std::uint64_t from, std::uint64_t to) {
  if (from == to) return true;  // full circle
  if (from < to) return x > from && x <= to;
  return x > from || x <= to;  // wraps around zero
}

namespace {

// Route message layout: u64 target | u8 purpose | u8 hops | u64 origin | bytes
Payload encode_route(std::uint64_t target, std::uint8_t purpose,
                     std::uint8_t hops, NodeId origin, ByteView payload) {
  Writer w(2 * sizeof(std::uint64_t) + 2 + sizeof(std::uint32_t) +
           payload.size());
  w.u64(target);
  w.u8(purpose);
  w.u8(hops);
  w.node_id(origin);
  w.bytes(payload);
  return w.take_payload();
}

// GetPredReply layout: u64 pred(or invalid) | vec<u64> successor list
Payload encode_pred_reply(const std::optional<NodeId>& pred,
                          const std::vector<NodeId>& successors) {
  Writer w(sizeof(std::uint64_t) + sizeof(std::uint32_t) +
           successors.size() * sizeof(std::uint64_t));
  w.node_id(pred.value_or(NodeId()));
  w.vec(successors, [&w](NodeId n) { w.node_id(n); });
  return w.take_payload();
}

}  // namespace

ChordNode::ChordNode(NodeId self, net::Transport& transport, Rng rng,
                     ChordOptions options, DeliverFn deliver)
    : self_(self),
      ring_id_(chord_ring_id(self)),
      transport_(transport),
      rng_(rng),
      options_(options),
      deliver_(std::move(deliver)) {
  fingers_.fill(NodeId());
  ensure(options_.successor_list_size > 0, "Chord: zero successor list");
}

void ChordNode::join(NodeId contact) {
  predecessor_.reset();
  successors_.clear();
  if (!contact.valid() || contact == self_) {
    successors_.push_back(self_);  // new ring of one
    return;
  }
  // Optimistic join: adopt the contact as successor; stabilization walks us
  // to the correct position within a few rounds (classic Chord behaviour).
  successors_.push_back(contact);
}

bool ChordNode::owns(std::uint64_t target) const {
  if (!predecessor_) return true;
  return in_ring_range(target, chord_ring_id(*predecessor_), ring_id_);
}

NodeId ChordNode::closest_preceding(std::uint64_t target) const {
  // Scan fingers from the top, then the successor list, for the node whose
  // ring id most closely precedes the target.
  for (std::size_t i = fingers_.size(); i-- > 0;) {
    const NodeId f = fingers_[i];
    if (!f.valid() || f == self_) continue;
    if (in_ring_range(chord_ring_id(f), ring_id_, target - 1)) return f;
  }
  for (std::size_t i = successors_.size(); i-- > 0;) {
    const NodeId s = successors_[i];
    if (!s.valid() || s == self_) continue;
    if (in_ring_range(chord_ring_id(s), ring_id_, target - 1)) return s;
  }
  return successor();
}

void ChordNode::route(std::uint64_t target, std::uint8_t purpose,
                      Payload payload) {
  if (owns(target)) {
    if (deliver_) deliver_(purpose, payload, self_);
    return;
  }
  forward_route(target, purpose, 0, self_, payload);
}

void ChordNode::forward_route(std::uint64_t target, std::uint8_t purpose,
                              std::uint8_t hops, NodeId origin,
                              const Payload& payload) {
  if (hops >= options_.max_route_hops) return;  // routing loop safety valve
  NodeId next = successor();
  if (!in_ring_range(target, ring_id_, chord_ring_id(successor()))) {
    next = closest_preceding(target);
  }
  if (next == self_ || !next.valid()) return;  // isolated; drop
  transport_.send(net::Message{
      self_, next, kChordRoute,
      encode_route(target, purpose, hops + 1, origin, payload)});
}

void ChordNode::tick() {
  // Successor failure detection: a stabilize round that never answered.
  if (awaiting_successor_reply_ &&
      ++rounds_without_successor_reply_ >= options_.successor_timeout_rounds) {
    if (successors_.size() > 1) {
      successors_.erase(successors_.begin());
    } else if (!successors_.empty() && successors_.front() != self_) {
      successors_.front() = self_;  // last resort: point at ourselves
    }
    rounds_without_successor_reply_ = 0;
    awaiting_successor_reply_ = false;
  }
  stabilize();
  check_predecessor();
  fix_next_finger();
}

void ChordNode::check_predecessor() {
  // A dead predecessor must be cleared, or we keep advertising it through
  // GetPredReply and the ring never heals (classic check_predecessor()).
  if (!predecessor_ || *predecessor_ == self_) {
    awaiting_pred_pong_ = false;
    rounds_without_pred_pong_ = 0;
    return;
  }
  if (awaiting_pred_pong_ &&
      ++rounds_without_pred_pong_ >= options_.successor_timeout_rounds) {
    predecessor_.reset();
    awaiting_pred_pong_ = false;
    rounds_without_pred_pong_ = 0;
    return;
  }
  awaiting_pred_pong_ = true;
  transport_.send(net::Message{self_, *predecessor_, kChordPing, {}});
}

void ChordNode::stabilize() {
  NodeId succ = successor();
  if ((succ == self_ || !succ.valid()) && predecessor_ &&
      *predecessor_ != self_) {
    // Ring creator case: we still point at ourselves but someone has
    // notified us. Adopting the predecessor as successor closes the
    // two-node ring (classic Chord's stabilize with x = predecessor).
    if (successors_.empty()) {
      successors_.push_back(*predecessor_);
    } else {
      successors_.front() = *predecessor_;
    }
    succ = successor();
  }
  if (succ == self_ || !succ.valid()) return;
  awaiting_successor_reply_ = true;
  transport_.send(net::Message{self_, succ, kChordGetPred, {}});
}

void ChordNode::fix_next_finger() {
  // finger[i] = successor(ring_id + 2^i); route a lookup whose purpose tag
  // encodes the finger index (0xF0 marker + index via payload).
  next_finger_ = (next_finger_ + 1) % 64;
  const std::uint64_t target = ring_id_ + (std::uint64_t{1} << next_finger_);
  Writer w;
  w.u8(static_cast<std::uint8_t>(next_finger_));
  route(target, /*purpose=*/0xF0, w.take_payload());
}

bool ChordNode::handle(const net::Message& msg) {
  switch (msg.type) {
    case kChordRoute: {
      Reader r(msg.payload);
      const std::uint64_t target = r.u64();
      const std::uint8_t purpose = r.u8();
      const std::uint8_t hops = r.u8();
      const NodeId origin = r.node_id();
      // Zero-copy: the routed payload stays a view into the incoming frame.
      const Payload payload = r.payload();
      if (!r.finish().ok()) return true;

      if (owns(target)) {
        if (purpose == 0xF0) {
          // Finger fix: tell the origin we own this finger target.
          Writer w;
          w.u8(payload.empty() ? 0 : payload.front());
          w.node_id(self_);
          transport_.send(net::Message{self_, origin, kChordRoute,
                                       encode_route(target, 0xF1, 0, self_,
                                                    w.take_payload())});
        } else if (purpose == 0xF1) {
          // A finger answer delivered to us (we are the origin).
          Reader fr(payload);
          const std::uint8_t index = fr.u8();
          const NodeId owner = fr.node_id();
          if (fr.finish().ok() && index < fingers_.size()) {
            fingers_[index] = owner;
          }
        } else if (deliver_) {
          deliver_(purpose, payload, origin);
        }
        return true;
      }
      forward_route(target, purpose, hops, origin, payload);
      return true;
    }

    case kChordGetPred: {
      transport_.send(net::Message{self_, msg.src, kChordGetPredReply,
                                   encode_pred_reply(predecessor_,
                                                     successors_)});
      // The asker believes we are its successor; it may become our
      // predecessor. Classic notify handles it; nothing to do here.
      return true;
    }

    case kChordGetPredReply: {
      Reader r(msg.payload);
      const NodeId pred = r.node_id();
      const auto succ_list =
          r.vec<NodeId>([&r]() { return r.node_id(); });
      if (!r.finish().ok()) return true;

      awaiting_successor_reply_ = false;
      rounds_without_successor_reply_ = 0;

      // stabilize(): if successor's predecessor sits between us and the
      // successor, it becomes our new successor.
      if (pred.valid() && pred != self_ &&
          in_ring_range(chord_ring_id(pred), ring_id_,
                        chord_ring_id(successor()) - 1)) {
        successors_.insert(successors_.begin(), pred);
      }
      // Rebuild the successor list from the (possibly new) successor's list.
      std::vector<NodeId> rebuilt;
      rebuilt.push_back(successor());
      for (const NodeId s : succ_list) {
        if (s.valid() && s != self_ &&
            std::find(rebuilt.begin(), rebuilt.end(), s) == rebuilt.end()) {
          rebuilt.push_back(s);
        }
        if (rebuilt.size() >= options_.successor_list_size) break;
      }
      successors_ = std::move(rebuilt);

      // notify(successor): we might be its predecessor.
      Writer w;
      w.node_id(self_);
      transport_.send(
          net::Message{self_, successor(), kChordNotify, w.take_payload()});
      return true;
    }

    case kChordPing: {
      transport_.send(net::Message{self_, msg.src, kChordPong, {}});
      return true;
    }

    case kChordPong: {
      if (predecessor_ && msg.src == *predecessor_) {
        awaiting_pred_pong_ = false;
        rounds_without_pred_pong_ = 0;
      }
      return true;
    }

    case kChordNotify: {
      Reader r(msg.payload);
      const NodeId candidate = r.node_id();
      if (!r.finish().ok() || !candidate.valid() || candidate == self_) {
        return true;
      }
      if (!predecessor_ ||
          in_ring_range(chord_ring_id(candidate),
                        chord_ring_id(*predecessor_), ring_id_ - 1)) {
        predecessor_ = candidate;
      }
      return true;
    }

    default:
      return false;
  }
}

}  // namespace dataflasks::baseline
