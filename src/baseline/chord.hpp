// Chord-style structured overlay: the "structured peer-to-peer" substrate
// (DHT) that existing tuple-stores rely on and that DataFlasks' motivation
// targets (paper §I: DHTs assume moderately stable environments). Used as
// the comparison baseline for routing cost and availability under churn.
//
// Implements the classic protocol: 64-bit identifier ring, immediate
// successor + successor list for resilience, finger table for O(log N)
// routing, periodic stabilize / notify / fix-fingers / check-predecessor.
// Routing is recursive: the query is forwarded to the closest preceding
// node until the owner is reached, which replies directly to the origin.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>

#include "common/rng.hpp"
#include "net/transport.hpp"

namespace dataflasks::baseline {

constexpr std::uint16_t kChordRoute = net::kBaselineTypeBase + 0;
constexpr std::uint16_t kChordGetPred = net::kBaselineTypeBase + 2;
constexpr std::uint16_t kChordGetPredReply = net::kBaselineTypeBase + 3;
constexpr std::uint16_t kChordNotify = net::kBaselineTypeBase + 4;
constexpr std::uint16_t kChordPing = net::kBaselineTypeBase + 5;
constexpr std::uint16_t kChordPong = net::kBaselineTypeBase + 6;

/// Ring position derived from a node's transport id.
[[nodiscard]] std::uint64_t chord_ring_id(NodeId node);

/// True when `x` lies in the half-open ring interval (from, to].
[[nodiscard]] bool in_ring_range(std::uint64_t x, std::uint64_t from,
                                 std::uint64_t to);

struct ChordOptions {
  std::size_t successor_list_size = 8;
  std::uint8_t max_route_hops = 64;
  /// Stabilize rounds without an answer from the successor before failing
  /// over to the next successor-list entry.
  std::uint32_t successor_timeout_rounds = 2;
};

class ChordNode {
 public:
  /// `deliver`: invoked when this node is the owner of a routed payload's
  /// target. `purpose` is an opaque tag for the upper layer (the KV store).
  using DeliverFn = std::function<void(std::uint8_t purpose,
                                       const Payload& payload, NodeId origin)>;

  ChordNode(NodeId self, net::Transport& transport, Rng rng,
            ChordOptions options, DeliverFn deliver);

  /// Joins via `contact` (any live ring member), or creates a new ring when
  /// contact is invalid.
  void join(NodeId contact);

  /// One maintenance round: stabilize + notify + fix one finger.
  void tick();

  /// Routes `payload` toward the owner of ring position `target`.
  /// Delivered locally when this node already owns the target.
  void route(std::uint64_t target, std::uint8_t purpose, Payload payload);

  /// Consumes Chord messages; false when the type is not ours.
  bool handle(const net::Message& msg);

  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] std::uint64_t ring_id() const { return ring_id_; }
  [[nodiscard]] NodeId successor() const { return successors_.empty()
                                               ? self_
                                               : successors_.front(); }
  [[nodiscard]] const std::vector<NodeId>& successor_list() const {
    return successors_;
  }
  [[nodiscard]] std::optional<NodeId> predecessor() const {
    return predecessor_;
  }

  /// True when `target` falls between our predecessor and us — i.e. this
  /// node owns the key. With no predecessor knowledge we claim ownership
  /// (safe: replication absorbs transient misroutes).
  [[nodiscard]] bool owns(std::uint64_t target) const;

 private:
  void stabilize();
  void check_predecessor();
  void fix_next_finger();
  [[nodiscard]] NodeId closest_preceding(std::uint64_t target) const;
  void forward_route(std::uint64_t target, std::uint8_t purpose,
                     std::uint8_t hops, NodeId origin,
                     const Payload& payload);

  NodeId self_;
  std::uint64_t ring_id_;
  net::Transport& transport_;
  Rng rng_;
  ChordOptions options_;
  DeliverFn deliver_;

  std::optional<NodeId> predecessor_;
  std::vector<NodeId> successors_;  ///< [0] = immediate successor
  std::array<NodeId, 64> fingers_;
  std::size_t next_finger_ = 1;
  std::uint32_t rounds_without_successor_reply_ = 0;
  bool awaiting_successor_reply_ = false;
  std::uint32_t rounds_without_pred_pong_ = 0;
  bool awaiting_pred_pong_ = false;
};

}  // namespace dataflasks::baseline
