#include "baseline/dht_kv.hpp"

#include "common/hash.hpp"
#include "store/object.hpp"

namespace dataflasks::baseline {

namespace {

// Store payload: u64 rid | u64 coordinator | u8 remaining_replicas | object
Payload encode_store(std::uint64_t rid, NodeId coordinator,
                     std::uint8_t remaining, const store::Object& obj) {
  Writer w(2 * sizeof(std::uint64_t) + 1 + store::encoded_size(obj));
  w.u64(rid);
  w.node_id(coordinator);
  w.u8(remaining);
  store::encode(w, obj);
  return w.take_payload();
}

// Get payload: u64 rid | u64 coordinator | key | has_version | version
Payload encode_get(std::uint64_t rid, NodeId coordinator, const Key& key,
                   const std::optional<Version>& version) {
  Writer w(3 * sizeof(std::uint64_t) + sizeof(std::uint32_t) + key.size() +
           1);
  w.u64(rid);
  w.node_id(coordinator);
  w.str(key);
  w.boolean(version.has_value());
  w.u64(version.value_or(0));
  return w.take_payload();
}

}  // namespace

DhtNode::DhtNode(NodeId self, runtime::Runtime& rt,
                 net::Transport& transport, Rng rng, DhtKvOptions options)
    : self_(self),
      runtime_(rt),
      transport_(transport),
      rng_(rng),
      options_(options) {}

DhtNode::~DhtNode() {
  if (running_) crash();
}

void DhtNode::start(NodeId contact) {
  ensure(!running_, "DhtNode::start on a running node");
  store_.clear();  // volatile store, same crash semantics as DataFlasks sims
  chord_ = std::make_unique<ChordNode>(
      self_, transport_, rng_.fork(0xc40d), options_.chord,
      [this](std::uint8_t purpose, const Payload& payload, NodeId origin) {
        deliver(purpose, payload, origin);
      });
  chord_->join(contact);
  transport_.register_handler(
      self_, [this](const net::Message& msg) { dispatch(msg); });
  maintenance_ = runtime_.schedule_periodic(
      rng_.next_in(0, options_.maintenance_period),
      options_.maintenance_period, [this]() { chord_->tick(); });
  running_ = true;
}

void DhtNode::crash() {
  ensure(running_, "DhtNode::crash on a stopped node");
  maintenance_.cancel();
  transport_.unregister_handler(self_);
  for (auto& [_, p] : pending_puts_) p.timer.cancel();
  for (auto& [_, p] : pending_gets_) p.timer.cancel();
  pending_puts_.clear();
  pending_gets_.clear();
  running_ = false;
}

void DhtNode::put(Key key, Payload value, Version version, PutCallback done) {
  const std::uint64_t rid = next_rid_++;
  PendingPut pending;
  pending.key = std::move(key);
  pending.value = std::move(value);
  pending.version = version;
  pending.done = std::move(done);
  pending.started = runtime_.now();
  pending_puts_.emplace(rid, std::move(pending));
  metrics_.counter("dht.puts").add();
  send_put(rid);
}

void DhtNode::send_put(std::uint64_t rid) {
  auto& pending = pending_puts_.at(rid);
  ++pending.attempts;
  const store::Object obj{pending.key, pending.version, pending.value};
  chord_->route(stable_key_hash(pending.key), kPurposeStore,
                encode_store(rid, self_,
                             static_cast<std::uint8_t>(options_.replication),
                             obj));
  pending.timer = runtime_.schedule_after(
      options_.request_timeout, [this, rid]() {
        const auto it = pending_puts_.find(rid);
        if (it == pending_puts_.end()) return;
        if (it->second.attempts < options_.max_attempts) {
          metrics_.counter("dht.put_retries").add();
          send_put(rid);
          return;
        }
        DhtPutResult result;
        result.ok = false;
        result.attempts = it->second.attempts;
        result.latency = runtime_.now() - it->second.started;
        auto done = std::move(it->second.done);
        pending_puts_.erase(it);
        metrics_.counter("dht.put_failures").add();
        if (done) done(result);
      });
}

void DhtNode::get(Key key, std::optional<Version> version, GetCallback done) {
  const std::uint64_t rid = next_rid_++;
  PendingGet pending;
  pending.key = std::move(key);
  pending.version = version;
  pending.done = std::move(done);
  pending.started = runtime_.now();
  pending_gets_.emplace(rid, std::move(pending));
  metrics_.counter("dht.gets").add();
  send_get(rid);
}

void DhtNode::send_get(std::uint64_t rid) {
  auto& pending = pending_gets_.at(rid);
  ++pending.attempts;
  chord_->route(stable_key_hash(pending.key), kPurposeGet,
                encode_get(rid, self_, pending.key, pending.version));
  pending.timer = runtime_.schedule_after(
      options_.request_timeout, [this, rid]() {
        const auto it = pending_gets_.find(rid);
        if (it == pending_gets_.end()) return;
        if (it->second.attempts < options_.max_attempts) {
          metrics_.counter("dht.get_retries").add();
          send_get(rid);
          return;
        }
        DhtGetResult result;
        result.ok = false;
        result.attempts = it->second.attempts;
        result.latency = runtime_.now() - it->second.started;
        auto done = std::move(it->second.done);
        pending_gets_.erase(it);
        metrics_.counter("dht.get_failures").add();
        if (done) done(result);
      });
}

void DhtNode::deliver(std::uint8_t purpose, const Payload& payload,
                      NodeId /*origin*/) {
  switch (purpose) {
    case kPurposeStore:
    case kPurposeReplicate: {
      Reader r(payload);
      const std::uint64_t rid = r.u64();
      const NodeId coordinator = r.node_id();
      const std::uint8_t remaining = r.u8();
      const store::Object obj = store::decode_object(r);
      if (!r.finish().ok()) return;

      if (store_.put(obj).ok()) metrics_.counter("dht.objects_stored").add();

      if (purpose == kPurposeStore) {
        // Owner: replicate down the successor chain, then ack.
        std::uint8_t left = remaining > 0 ? remaining - 1 : 0;
        for (const NodeId succ : chord_->successor_list()) {
          if (left == 0) break;
          if (succ == self_ || !succ.valid()) continue;
          transport_.send(net::Message{
              self_, succ, kChordRoute,
              // Direct replicate: bypass routing, tag the payload so the
              // receiver stores without re-replicating.
              [&] {
                Writer w;
                w.u64(chord_ring_id(succ));
                w.u8(kPurposeReplicate);
                w.u8(0);
                w.node_id(self_);
                w.bytes(encode_store(rid, coordinator, 0, obj));
                return w.take_payload();
              }()});
          --left;
        }
        Writer w;
        w.u64(rid);
        transport_.send(
            net::Message{self_, coordinator, kDhtAck, w.take_payload()});
      }
      return;
    }

    case kPurposeGet: {
      Reader r(payload);
      const std::uint64_t rid = r.u64();
      const NodeId coordinator = r.node_id();
      const Key key = r.str();
      const bool has_version = r.boolean();
      const Version version = r.u64();
      if (!r.finish().ok()) return;

      auto obj = store_.get(
          key, has_version ? std::optional<Version>(version) : std::nullopt);
      Writer w;
      w.u64(rid);
      w.boolean(obj.ok());
      store::encode(w, obj.ok() ? obj.value() : store::Object{key, 0, {}});
      transport_.send(
          net::Message{self_, coordinator, kDhtGetReply, w.take_payload()});
      return;
    }

    default:
      return;
  }
}

void DhtNode::dispatch(const net::Message& msg) {
  if (!running_) return;
  if (chord_->handle(msg)) return;

  switch (msg.type) {
    case kDhtAck: {
      Reader r(msg.payload);
      const std::uint64_t rid = r.u64();
      if (!r.finish().ok()) return;
      const auto it = pending_puts_.find(rid);
      if (it == pending_puts_.end()) return;
      it->second.timer.cancel();
      DhtPutResult result;
      result.ok = true;
      result.attempts = it->second.attempts;
      result.latency = runtime_.now() - it->second.started;
      auto done = std::move(it->second.done);
      pending_puts_.erase(it);
      metrics_.counter("dht.put_successes").add();
      if (done) done(result);
      return;
    }

    case kDhtGetReply: {
      Reader r(msg.payload);
      const std::uint64_t rid = r.u64();
      const bool found = r.boolean();
      const store::Object obj = store::decode_object(r);
      if (!r.finish().ok()) return;
      const auto it = pending_gets_.find(rid);
      if (it == pending_gets_.end()) return;
      if (!found) {
        // Authoritative miss from the owner: let the timeout retry (the
        // object may live on a successor after churn).
        return;
      }
      it->second.timer.cancel();
      DhtGetResult result;
      result.ok = true;
      result.object = obj;
      result.attempts = it->second.attempts;
      result.latency = runtime_.now() - it->second.started;
      auto done = std::move(it->second.done);
      pending_gets_.erase(it);
      metrics_.counter("dht.get_successes").add();
      if (done) done(result);
      return;
    }

    default:
      return;
  }
}

}  // namespace dataflasks::baseline
