// Key-value store over the Chord overlay: the structured baseline the
// DataFlasks paper positions itself against. The owner of hash(key) stores
// objects and replicates them to its successor list (Dynamo-style chain),
// which is exactly the placement whose availability degrades when the ring
// is churned faster than stabilization repairs it.
//
// Any node can act as coordinator: it routes the request to the owner and
// manages the client-visible timeout/retry, mirroring how any DataFlasks
// node accepts client requests.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "baseline/chord.hpp"
#include "common/metrics.hpp"
#include "runtime/runtime.hpp"
#include "store/memstore.hpp"

namespace dataflasks::baseline {

constexpr std::uint16_t kDhtAck = net::kBaselineTypeBase + 8;
constexpr std::uint16_t kDhtGetReply = net::kBaselineTypeBase + 9;

// Route purposes used over ChordNode.
constexpr std::uint8_t kPurposeStore = 1;
constexpr std::uint8_t kPurposeGet = 2;
constexpr std::uint8_t kPurposeReplicate = 3;

struct DhtKvOptions {
  ChordOptions chord;
  std::size_t replication = 3;  ///< copies kept on the successor chain
  SimTime request_timeout = 2 * kSeconds;
  std::uint32_t max_attempts = 4;
  SimTime maintenance_period = 1 * kSeconds;
};

struct DhtPutResult {
  bool ok = false;
  std::uint32_t attempts = 0;
  SimTime latency = 0;
};

struct DhtGetResult {
  bool ok = false;
  store::Object object;
  std::uint32_t attempts = 0;
  SimTime latency = 0;
};

class DhtNode {
 public:
  using PutCallback = std::function<void(const DhtPutResult&)>;
  using GetCallback = std::function<void(const DhtGetResult&)>;

  DhtNode(NodeId self, runtime::Runtime& rt, net::Transport& transport,
          Rng rng, DhtKvOptions options);
  ~DhtNode();

  DhtNode(const DhtNode&) = delete;
  DhtNode& operator=(const DhtNode&) = delete;

  /// Boots the node and joins the ring via `contact` (invalid = new ring).
  void start(NodeId contact);
  void crash();
  [[nodiscard]] bool running() const { return running_; }

  /// Coordinator API (client-facing): route a put/get through this node.
  void put(Key key, Payload value, Version version, PutCallback done);
  void get(Key key, std::optional<Version> version, GetCallback done);

  [[nodiscard]] NodeId id() const { return self_; }
  [[nodiscard]] ChordNode& chord() { return *chord_; }
  [[nodiscard]] store::Store& store() { return store_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }

 private:
  struct PendingPut {
    Key key;
    Payload value;
    Version version = 0;
    PutCallback done;
    std::uint32_t attempts = 0;
    SimTime started = 0;
    runtime::TimerHandle timer;
  };
  struct PendingGet {
    Key key;
    std::optional<Version> version;
    GetCallback done;
    std::uint32_t attempts = 0;
    SimTime started = 0;
    runtime::TimerHandle timer;
  };

  void dispatch(const net::Message& msg);
  void deliver(std::uint8_t purpose, const Payload& payload, NodeId origin);
  void send_put(std::uint64_t rid);
  void send_get(std::uint64_t rid);

  NodeId self_;
  runtime::Runtime& runtime_;
  net::Transport& transport_;
  Rng rng_;
  DhtKvOptions options_;
  MetricsRegistry metrics_;
  store::MemStore store_;
  std::unique_ptr<ChordNode> chord_;
  runtime::TimerHandle maintenance_;
  bool running_ = false;

  std::uint64_t next_rid_ = 1;
  std::unordered_map<std::uint64_t, PendingPut> pending_puts_;
  std::unordered_map<std::uint64_t, PendingGet> pending_gets_;
};

}  // namespace dataflasks::baseline
