#include "dissemination/dedup_cache.hpp"

#include "common/ensure.hpp"

namespace dataflasks::dissemination {

DedupCache::DedupCache(std::size_t capacity) : capacity_(capacity) {
  ensure(capacity_ > 0, "DedupCache: zero capacity");
}

bool DedupCache::seen_or_insert(std::uint64_t id) {
  if (set_.contains(id)) return true;
  if (set_.size() >= capacity_) {
    set_.erase(order_.front());
    order_.pop_front();
  }
  set_.insert(id);
  order_.push_back(id);
  return false;
}

void DedupCache::clear() {
  set_.clear();
  order_.clear();
}

}  // namespace dataflasks::dissemination
