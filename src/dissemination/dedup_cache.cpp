#include "dissemination/dedup_cache.hpp"

#include <algorithm>

#include "common/ensure.hpp"

namespace dataflasks::dissemination {

namespace {
constexpr int kInitialBits = 4;  ///< 16 slots; grows on demand
}  // namespace

DedupCache::DedupCache(std::size_t capacity) : capacity_(capacity) {
  ensure(capacity_ > 0, "DedupCache: zero capacity");
  table_bits_ = kInitialBits;
  table_.assign(std::size_t{1} << table_bits_, 0);
  occupied_.assign(table_.size(), 0);
  mask_ = table_.size() - 1;
}

std::size_t DedupCache::find_slot(std::uint64_t id) const {
  std::size_t i = slot_of(id);
  while (occupied_[i]) {
    if (table_[i] == id) return i;
    i = (i + 1) & mask_;
  }
  return kNotFound;
}

void DedupCache::insert_slot(std::uint64_t id) {
  std::size_t i = slot_of(id);
  while (occupied_[i]) i = (i + 1) & mask_;
  table_[i] = id;
  occupied_[i] = 1;
}

void DedupCache::erase_id(std::uint64_t id) {
  std::size_t i = find_slot(id);
  if (i == kNotFound) return;
  // Linear-probing backward-shift deletion: close the hole by moving later
  // probe-chain entries up, so lookups never need tombstones.
  std::size_t j = i;
  for (;;) {
    occupied_[i] = 0;
    for (;;) {
      j = (j + 1) & mask_;
      if (!occupied_[j]) return;
      const std::size_t home = slot_of(table_[j]);
      // Move table_[j] into the hole at i unless its home slot lies in the
      // cyclic interval (i, j] — then the probe chain still reaches it.
      const bool reachable =
          i <= j ? (home > i && home <= j) : (home > i || home <= j);
      if (!reachable) break;
    }
    table_[i] = table_[j];
    occupied_[i] = 1;
    i = j;
  }
}

void DedupCache::grow() {
  const std::vector<std::uint64_t> old_table = std::move(table_);
  const std::vector<std::uint8_t> old_occupied = std::move(occupied_);
  ++table_bits_;
  table_.assign(std::size_t{1} << table_bits_, 0);
  occupied_.assign(table_.size(), 0);
  mask_ = table_.size() - 1;
  for (std::size_t i = 0; i < old_table.size(); ++i) {
    if (old_occupied[i]) insert_slot(old_table[i]);
  }
}

bool DedupCache::seen_or_insert(std::uint64_t id) {
  if (find_slot(id) != kNotFound) return true;

  if (count_ >= capacity_) {
    // Evict the oldest id and reuse its ring position.
    erase_id(ring_[ring_pos_]);
    ring_[ring_pos_] = id;
    ring_pos_ = (ring_pos_ + 1) % capacity_;
  } else {
    // Keep the probe chains short: grow at 50% load until the table covers
    // the configured capacity.
    if ((count_ + 1) * 2 > table_.size() && table_.size() < 2 * capacity_) {
      grow();
    }
    ring_.push_back(id);
    ++count_;
  }
  insert_slot(id);
  return false;
}

void DedupCache::clear() {
  std::fill(occupied_.begin(), occupied_.end(), 0);
  ring_.clear();
  ring_pos_ = 0;
  count_ = 0;
}

}  // namespace dataflasks::dissemination
