// Full epidemic broadcast (paper §II): every infected node relays to
// fanout = ln(N) + c random peers, achieving atomic infection with
// probability e^{-e^{-c}}. DataFlasks uses this for configuration epochs
// (dynamic slice count); benches use it as the "atomic dissemination"
// comparison point against slice-targeted spraying.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.hpp"
#include "dissemination/dedup_cache.hpp"
#include "net/transport.hpp"
#include "pss/peer_sampling.hpp"

namespace dataflasks::dissemination {

constexpr std::uint16_t kBroadcastMsg = net::kRequestTypeBase + 0;

struct BroadcastOptions {
  /// Relay fanout. The canonical choice is ceil(ln N) + c; the owner sets it
  /// from its (approximate) knowledge of system scale.
  std::size_t fanout = 8;
  std::uint8_t max_hops = 64;  ///< safety bound; epidemic dies via dedup first
  std::size_t dedup_capacity = 1 << 14;
};

/// Computes ln(N) + c rounded up, the paper's relay count for atomic
/// dissemination with failure probability e^{-e^{-c}}.
[[nodiscard]] std::size_t atomic_fanout(std::size_t system_size, double c);

class EpidemicBroadcast {
 public:
  /// `deliver` runs exactly once per broadcast id on each infected node.
  /// The payload is a zero-copy view into the frame it arrived in.
  using DeliverFn =
      std::function<void(const Payload& payload, NodeId origin)>;

  EpidemicBroadcast(NodeId self, net::Transport& transport,
                    pss::PeerSampling& pss, Rng rng, BroadcastOptions options,
                    DeliverFn deliver);

  /// Originates a broadcast; returns its id. Delivers locally as well.
  std::uint64_t broadcast(Payload payload);

  /// Consumes broadcast messages; false when the type is not ours.
  bool handle(const net::Message& msg);

  [[nodiscard]] const BroadcastOptions& options() const { return options_; }
  void set_fanout(std::size_t fanout) { options_.fanout = fanout; }

 private:
  void relay(std::uint64_t id, NodeId origin, std::uint8_t hops,
             const Payload& payload);

  NodeId self_;
  net::Transport& transport_;
  pss::PeerSampling& pss_;
  Rng rng_;
  BroadcastOptions options_;
  DeliverFn deliver_;
  DedupCache seen_;
  std::uint64_t next_local_id_ = 0;
};

}  // namespace dataflasks::dissemination
