#include "dissemination/epidemic_broadcast.hpp"

#include <cmath>

#include "common/hash.hpp"

namespace dataflasks::dissemination {

std::size_t atomic_fanout(std::size_t system_size, double c) {
  if (system_size < 2) return 1;
  const double f = std::ceil(std::log(static_cast<double>(system_size)) + c);
  return f < 1.0 ? 1 : static_cast<std::size_t>(f);
}

EpidemicBroadcast::EpidemicBroadcast(NodeId self, net::Transport& transport,
                                     pss::PeerSampling& pss, Rng rng,
                                     BroadcastOptions options,
                                     DeliverFn deliver)
    : self_(self),
      transport_(transport),
      pss_(pss),
      rng_(rng),
      options_(options),
      deliver_(std::move(deliver)),
      seen_(options.dedup_capacity) {}

std::uint64_t EpidemicBroadcast::broadcast(Payload payload) {
  // Globally unique id: origin id mixed with a local sequence number.
  const std::uint64_t id =
      hash_combine(self_.value, 0xb40adca57ULL + next_local_id_++);
  seen_.seen_or_insert(id);
  if (deliver_) deliver_(payload, self_);
  relay(id, self_, 0, payload);
  return id;
}

bool EpidemicBroadcast::handle(const net::Message& msg) {
  if (msg.type != kBroadcastMsg) return false;

  Reader r(msg.payload);
  const std::uint64_t id = r.u64();
  const NodeId origin = r.node_id();
  const std::uint8_t hops = r.u8();
  // Zero-copy: the inner payload stays a view into the incoming frame.
  const Payload payload = r.payload();
  if (!r.finish().ok()) return true;  // malformed: drop

  if (seen_.seen_or_insert(id)) return true;  // duplicate

  if (deliver_) deliver_(payload, origin);
  if (hops < options_.max_hops) relay(id, origin, hops + 1, payload);
  return true;
}

void EpidemicBroadcast::relay(std::uint64_t id, NodeId origin,
                              std::uint8_t hops, const Payload& payload) {
  // One frame per relay round, shared by every peer Message (refcount bump
  // per send, not a byte copy).
  Writer w(2 * sizeof(std::uint64_t) + 1 + sizeof(std::uint32_t) +
           payload.size());
  w.u64(id);
  w.node_id(origin);
  w.u8(hops);
  w.bytes(payload);
  const Payload encoded = w.take_payload();

  for (const NodeId peer : pss_.sample_peers(options_.fanout)) {
    if (peer == self_) continue;
    transport_.send(net::Message{self_, peer, kBroadcastMsg, encoded});
  }
}

}  // namespace dataflasks::dissemination
