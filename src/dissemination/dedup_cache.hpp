// Bounded duplicate-suppression cache. Epidemic dissemination floods the
// same message id to a node many times; the first arrival wins and the rest
// must be dropped cheaply. FIFO eviction bounds memory on long runs.
//
// Implemented as an open-addressing hash table (linear probing with
// backward-shift deletion) plus a FIFO ring of inserted ids. Unlike a
// node-based std::unordered_set, the steady state performs zero allocations
// per insert — the previous set implementation was one of the top allocation
// sources on the dissemination hot path. The table grows lazily, so idle
// caches stay tiny even with large configured capacities.
#pragma once

#include <cstdint>
#include <vector>

namespace dataflasks::dissemination {

class DedupCache {
 public:
  explicit DedupCache(std::size_t capacity);

  /// Returns true when `id` was already present; otherwise inserts it
  /// (evicting the oldest entry if at capacity) and returns false.
  bool seen_or_insert(std::uint64_t id);

  [[nodiscard]] bool contains(std::uint64_t id) const {
    return find_slot(id) != kNotFound;
  }
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  void clear();

 private:
  static constexpr std::size_t kNotFound = ~std::size_t{0};

  [[nodiscard]] std::size_t slot_of(std::uint64_t id) const {
    // Fibonacci mix guards against adversarially aligned ids; message ids
    // are hash_combine outputs already, this is belt-and-braces.
    return static_cast<std::size_t>((id * 0x9E3779B97F4A7C15ULL) >>
                                    (64 - table_bits_));
  }
  [[nodiscard]] std::size_t find_slot(std::uint64_t id) const;
  void insert_slot(std::uint64_t id);
  void erase_id(std::uint64_t id);
  void grow();

  std::size_t capacity_;
  std::size_t count_ = 0;

  // Open-addressed table; `occupied_` distinguishes empty slots so any
  // 64-bit id value is storable.
  std::vector<std::uint64_t> table_;
  std::vector<std::uint8_t> occupied_;
  std::size_t mask_ = 0;
  int table_bits_ = 0;

  // Insertion-ordered ids; wraps circularly once `capacity_` is reached.
  std::vector<std::uint64_t> ring_;
  std::size_t ring_pos_ = 0;
};

}  // namespace dataflasks::dissemination
