// Bounded duplicate-suppression cache. Epidemic dissemination floods the
// same message id to a node many times; the first arrival wins and the rest
// must be dropped cheaply. FIFO eviction bounds memory on long runs.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>

namespace dataflasks::dissemination {

class DedupCache {
 public:
  explicit DedupCache(std::size_t capacity);

  /// Returns true when `id` was already present; otherwise inserts it
  /// (evicting the oldest entry if at capacity) and returns false.
  bool seen_or_insert(std::uint64_t id);

  [[nodiscard]] bool contains(std::uint64_t id) const {
    return set_.contains(id);
  }
  [[nodiscard]] std::size_t size() const { return set_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  void clear();

 private:
  std::size_t capacity_;
  std::unordered_set<std::uint64_t> set_;
  std::deque<std::uint64_t> order_;
};

}  // namespace dataflasks::dissemination
