#include "dissemination/spray_router.hpp"

#include <algorithm>
#include <cmath>

#include "common/hash.hpp"

namespace dataflasks::dissemination {

std::uint8_t adaptive_ttl(std::size_t fanout, std::uint32_t slice_count,
                          double beta) {
  ensure(fanout >= 2, "adaptive_ttl: fanout must be >= 2");
  const double target_coverage =
      std::max(2.0, beta * static_cast<double>(slice_count));
  // fanout^hops >= target coverage. A fanout-f spray tree overshoots the
  // target by up to f-fold already (ceil) which absorbs tree overlap at
  // coverages well below N; the residual miss probability (~e^-beta) is
  // handled by client retries rather than by padding every spray.
  const double hops =
      std::ceil(std::log(target_coverage) / std::log(static_cast<double>(fanout)));
  return static_cast<std::uint8_t>(std::clamp(hops, 1.0, 255.0));
}

SprayRouter::SprayRouter(NodeId self, net::Transport& transport,
                         pss::PeerSampling& pss, Rng rng, SprayOptions options,
                         SliceFn current_slice, SlicePeersFn slice_peers,
                         DeliverFn deliver, DirectoryFn directory)
    : self_(self),
      transport_(transport),
      pss_(pss),
      rng_(rng),
      options_(options),
      current_slice_(std::move(current_slice)),
      slice_peers_(std::move(slice_peers)),
      deliver_(std::move(deliver)),
      directory_(std::move(directory)),
      seen_(options.dedup_capacity) {
  ensure(static_cast<bool>(current_slice_), "SprayRouter: no slice fn");
  ensure(static_cast<bool>(slice_peers_), "SprayRouter: no slice peers fn");
  ensure(static_cast<bool>(deliver_), "SprayRouter: no deliver fn");
}

std::uint64_t SprayRouter::originate(SliceId target, Payload payload) {
  const std::uint64_t id =
      hash_combine(self_.value, 0x5b4a9e11ULL + next_local_id_++);
  seen_.seen_or_insert(id);
  route(id, target, self_, 0, /*in_slice_phase=*/false, payload,
        /*deliver_locally=*/true);
  return id;
}

bool SprayRouter::handle(const net::Message& msg) {
  if (msg.type != kSprayMsg) return false;

  Reader r(msg.payload);
  const std::uint64_t id = r.u64();
  const auto target = static_cast<SliceId>(r.u32());
  const NodeId origin = r.node_id();
  const std::uint8_t hops = r.u8();
  const bool in_slice_phase = r.boolean();
  // Zero-copy: the inner payload stays a view into the incoming frame.
  const Payload payload = r.payload();
  if (!r.finish().ok()) return true;  // malformed: drop

  if (seen_.seen_or_insert(id)) return true;  // duplicate
  route(id, target, origin, hops, in_slice_phase, payload,
        /*deliver_locally=*/true);
  return true;
}

void SprayRouter::route(std::uint64_t id, SliceId target, NodeId origin,
                        std::uint8_t hops, bool in_slice_phase,
                        const Payload& payload, bool deliver_locally) {
  const bool in_target = current_slice_() == target;

  if (in_target) {
    DeliverResult result = DeliverResult::kStop;
    if (deliver_locally) result = deliver_(payload, target, origin);
    if (result == DeliverResult::kContinueInSlice) {
      // Phase switch: the discovery hop counter does not constrain the
      // intra-slice phase, which gets its own budget.
      const std::uint8_t slice_hops = in_slice_phase ? hops : 0;
      if (slice_hops < options_.max_slice_hops) {
        relay_in_slice(id, target, origin, slice_hops + 1, payload);
      }
    }
    return;
  }

  if (!in_slice_phase && hops < options_.max_hops) {
    relay_global(id, target, origin, hops + 1, /*in_slice_phase=*/false,
                 payload);
  } else if (in_slice_phase && hops < options_.max_slice_hops) {
    // A slice-phase message landed on a node that (now) believes it is
    // outside the slice (stale view / slice change): keep it moving via
    // the global view so it is not lost.
    relay_global(id, target, origin, hops + 1, /*in_slice_phase=*/true,
                 payload);
  }
}

void SprayRouter::relay_global(std::uint64_t id, SliceId target, NodeId origin,
                               std::uint8_t hops, bool in_slice_phase,
                               const Payload& payload) {
  std::size_t fanout = options_.global_fanout;
  // One frame per relay round: every recipient below (directory contact and
  // random peers alike) shares the same encoded buffer.
  const Payload frame =
      encode_frame(id, target, origin, hops, in_slice_phase, payload);

  if (options_.use_directory && directory_) {
    if (const auto contact = directory_(target);
        contact && *contact != self_) {
      // Known member of the target slice: jump straight to it and keep a
      // single random relay as a hedge against a stale directory entry.
      transport_.send(net::Message{self_, *contact, kSprayMsg, frame});
      fanout = fanout > 1 ? 1 : 0;
    }
  }

  for (const NodeId peer : pss_.sample_peers(fanout)) {
    if (peer == self_) continue;
    transport_.send(net::Message{self_, peer, kSprayMsg, frame});
  }
}

void SprayRouter::relay_in_slice(std::uint64_t id, SliceId target,
                                 NodeId origin, std::uint8_t hops,
                                 const Payload& payload) {
  auto peers = slice_peers_(options_.slice_fanout);
  if (peers.empty()) {
    // Slice view not warmed up yet: fall back to global relay so the
    // request is not lost (it will re-enter the slice elsewhere).
    relay_global(id, target, origin, hops, /*in_slice_phase=*/true, payload);
    return;
  }
  const Payload frame = encode_frame(id, target, origin, hops,
                                     /*in_slice_phase=*/true, payload);
  for (const NodeId peer : peers) {
    if (peer == self_) continue;
    transport_.send(net::Message{self_, peer, kSprayMsg, frame});
  }
}

Payload SprayRouter::encode_frame(std::uint64_t id, SliceId target,
                                  NodeId origin, std::uint8_t hops,
                                  bool in_slice_phase,
                                  const Payload& payload) const {
  Writer w(2 * sizeof(std::uint64_t) + 2 * sizeof(std::uint32_t) + 2 +
           payload.size());
  w.u64(id);
  w.u32(target);
  w.node_id(origin);
  w.u8(hops);
  w.boolean(in_slice_phase);
  w.bytes(payload);
  return w.take_payload();
}

}  // namespace dataflasks::dissemination
