// Slice-targeted spray routing (paper §IV-B). A request is relayed through
// random PSS peers until it reaches a node of the target slice; dissemination
// then continues only inside the slice ("we consider a Peer Sampling Service
// intra-slice"). This implements the paper's optimization of reaching only
// the fraction of nodes needed to hit the slice instead of flooding atomically.
//
// The router is protocol-agnostic: the owner supplies its current slice, a
// slice-local peer sampler and a delivery callback; payloads are opaque.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.hpp"
#include "dissemination/dedup_cache.hpp"
#include "net/transport.hpp"
#include "pss/peer_sampling.hpp"

namespace dataflasks::dissemination {

constexpr std::uint16_t kSprayMsg = net::kRequestTypeBase + 1;

struct SprayOptions {
  std::size_t global_fanout = 2;  ///< relays while outside the target slice
  std::size_t slice_fanout = 3;   ///< relays once inside the target slice
  /// Discovery hop budget. Needs ~log_f(beta * k) hops to cover enough
  /// nodes to hit a slice w.h.p.; owners set this from adaptive_ttl().
  std::uint8_t max_hops = 16;
  /// Separate budget for the intra-slice phase (paper §IV-B: once inside
  /// the slice, dissemination continues over the intra-slice PSS). The hop
  /// counter resets when a message first enters its target slice.
  std::uint8_t max_slice_hops = 8;
  std::size_t dedup_capacity = 1 << 15;
  /// When true and the node knows a contact in the target slice (from its
  /// slice directory), one copy is sent straight to that contact and random
  /// relaying is reduced — the paper's §VII cache optimization.
  bool use_directory = false;
};

/// Hop budget sufficient for a fanout-f spray to cover ~beta * slice_count
/// nodes — the coverage at which a uniformly spread spray hits a specific
/// slice with probability >= 1 - e^{-beta} — plus fixed slack for overlap.
[[nodiscard]] std::uint8_t adaptive_ttl(std::size_t fanout,
                                        std::uint32_t slice_count,
                                        double beta);

/// What the delivery callback tells the router to do next.
enum class DeliverResult {
  kStop,             ///< handled; do not relay further (typical for puts)
  kContinueInSlice,  ///< keep relaying to slice peers (get not satisfiable here)
};

class SprayRouter {
 public:
  /// Called once per message id when this node is in the target slice.
  /// The payload is a zero-copy view into the frame it arrived in.
  using DeliverFn = std::function<DeliverResult(
      const Payload& payload, SliceId target, NodeId origin)>;
  /// Supplies this node's current slice (from the slicing protocol).
  using SliceFn = std::function<SliceId()>;
  /// Supplies up to `count` known members of this node's own slice.
  using SlicePeersFn = std::function<std::vector<NodeId>(std::size_t count)>;
  /// Optional: a recently seen contact in the given slice (routing shortcut).
  using DirectoryFn = std::function<std::optional<NodeId>(SliceId)>;

  SprayRouter(NodeId self, net::Transport& transport, pss::PeerSampling& pss,
              Rng rng, SprayOptions options, SliceFn current_slice,
              SlicePeersFn slice_peers, DeliverFn deliver,
              DirectoryFn directory = nullptr);

  /// Originates a spray toward `target`. Returns the spray id. If this node
  /// is already in the target slice, delivery happens locally first.
  std::uint64_t originate(SliceId target, Payload payload);

  /// Consumes spray messages; false when the type is not ours.
  bool handle(const net::Message& msg);

  [[nodiscard]] const SprayOptions& options() const { return options_; }
  void set_options(const SprayOptions& options) { options_ = options; }

 private:
  void route(std::uint64_t id, SliceId target, NodeId origin,
             std::uint8_t hops, bool in_slice_phase, const Payload& payload,
             bool deliver_locally);
  void relay_global(std::uint64_t id, SliceId target, NodeId origin,
                    std::uint8_t hops, bool in_slice_phase,
                    const Payload& payload);
  void relay_in_slice(std::uint64_t id, SliceId target, NodeId origin,
                      std::uint8_t hops, const Payload& payload);
  /// Encodes the wire frame for one relay round; every peer in the round
  /// shares the returned buffer.
  [[nodiscard]] Payload encode_frame(std::uint64_t id, SliceId target,
                                     NodeId origin, std::uint8_t hops,
                                     bool in_slice_phase,
                                     const Payload& payload) const;

  NodeId self_;
  net::Transport& transport_;
  pss::PeerSampling& pss_;
  Rng rng_;
  SprayOptions options_;
  SliceFn current_slice_;
  SlicePeersFn slice_peers_;
  DeliverFn deliver_;
  DirectoryFn directory_;
  DedupCache seen_;
  std::uint64_t next_local_id_ = 0;
};

}  // namespace dataflasks::dissemination
